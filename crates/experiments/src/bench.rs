//! `battle bench` — wall-clock simulator throughput measurement.
//!
//! Not a paper experiment: this measures the *simulator itself*. It runs a
//! fixed busy-machine scenario (64 CPU-bound threads on the 32-core
//! Opteron) under both schedulers and reports how fast the event loop
//! chews through it: events per wall-clock second, and how many simulated
//! milliseconds one real millisecond buys. The numbers feed `BENCH_sim.json`
//! so perf regressions in the hot path (event queue, balance buffers,
//! trace gating) show up as a drop between commits.

use kernel::{cpu_hog, AppSpec, ThreadSpec};
use metrics::LatencySummary;
use simcore::{Dur, Time};
use topology::Topology;

use crate::{make_kernel, scope, RunCfg, Sched};

/// Throughput of one scheduler's run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchResult {
    /// Scheduler name ("CFS"/"ULE").
    pub sched: String,
    /// Simulated span covered.
    pub sim_seconds: f64,
    /// Wall-clock time it took.
    pub wall_seconds: f64,
    /// Kernel events processed.
    pub events: u64,
    /// Events per wall-clock second — the headline throughput number.
    pub events_per_sec: f64,
    /// Simulated ms bought per real ms (>1 means faster than real time).
    pub sim_ms_per_real_ms: f64,
    /// Context switches simulated (work-volume sanity check).
    pub ctx_switches: u64,
    /// Longest any task sat runnable-but-not-running (ms of simulated
    /// time) — the scheduling-latency/starvation headline number.
    pub max_runnable_wait_ms: f64,
    /// Runnable→running dispatch-delay distribution over the bench run.
    pub run_delay: LatencySummary,
    /// Wakeup→dispatch latency distribution over the bench run.
    pub wakeup_latency: LatencySummary,
}

/// Scheduling-latency percentiles measured on the Figure 1 single-core
/// mix (fibo + 80 sysbench workers) — the paper's interactivity scenario,
/// where ULE's starvation of the batch task shows up as a heavy run-delay
/// tail while CFS spreads the wait evenly.
#[derive(Debug, Clone, serde::Serialize)]
pub struct LatencyProbe {
    /// Scheduler name ("CFS"/"ULE").
    pub sched: String,
    /// Scale the probe ran at (clamped to keep `bench` fast).
    pub scale: f64,
    /// Runnable→running dispatch delay, all dispatches.
    pub run_delay: LatencySummary,
    /// Wakeup→dispatch latency.
    pub wakeup_latency: LatencySummary,
}

/// The full benchmark report.
#[derive(Debug, serde::Serialize)]
pub struct BenchReport {
    /// Work-volume scale the runs used.
    pub scale: f64,
    /// Seed the runs used.
    pub seed: u64,
    /// One entry per scheduler, CFS first.
    pub results: Vec<BenchResult>,
    /// Wakeup→dispatch / run-delay percentiles on the fig1 mix, CFS first.
    pub latency: Vec<LatencyProbe>,
}

/// Simulated seconds to cover at `scale` (clamped so even tiny scales
/// measure something and huge ones stay bounded).
fn sim_span(scale: f64) -> f64 {
    (4.0 * scale).clamp(0.25, 30.0)
}

/// Run the throughput benchmark under both schedulers, sequentially —
/// parallel runs would contend for cores and corrupt the wall-clock
/// numbers.
pub fn run(cfg: &RunCfg) -> BenchReport {
    let sim_secs = sim_span(cfg.scale);
    let mut results = Vec::new();
    for sched in Sched::BOTH {
        let topo = Topology::opteron_6172();
        let mut k = make_kernel(&topo, sched, cfg.seed);
        let threads = (0..64)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(60), Dur::millis(3))))
            .collect();
        k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
        let start = std::time::Instant::now();
        k.run_until(Time::ZERO + Dur::secs_f64(sim_secs));
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let events = k.counters().events;
        results.push(BenchResult {
            sched: sched.name().to_string(),
            sim_seconds: sim_secs,
            wall_seconds: wall,
            events,
            events_per_sec: events as f64 / wall,
            sim_ms_per_real_ms: sim_secs * 1e3 / (wall * 1e3),
            ctx_switches: k.counters().ctx_switches,
            max_runnable_wait_ms: k.counters().max_runnable_wait.as_secs_f64() * 1e3,
            run_delay: k.run_delay().summary(),
            wakeup_latency: k.wakeup_latency().summary(),
        });
    }
    BenchReport {
        scale: cfg.scale,
        seed: cfg.seed,
        results,
        latency: latency_probe(cfg),
    }
}

/// Run the fig1 single-core mix under both schedulers (sequentially; it
/// is simulated time, wall-clock contention does not matter here, but the
/// probe reuses bench's no-parallelism convention) and report dispatch
/// latency distributions.
fn latency_probe(cfg: &RunCfg) -> Vec<LatencyProbe> {
    let scale = cfg.scale.clamp(0.02, 0.2);
    let probe_cfg = RunCfg {
        scale,
        seed: cfg.seed,
    };
    Sched::BOTH
        .iter()
        .filter_map(
            |&sched| match scope::run_scenario("fig1", sched, &probe_cfg, None, 0) {
                Ok((k, _ops)) => Some(LatencyProbe {
                    sched: sched.name().to_string(),
                    scale,
                    run_delay: k.run_delay().summary(),
                    wakeup_latency: k.wakeup_latency().summary(),
                }),
                Err(e) => {
                    // The probe rides along on the throughput bench; a broken
                    // probe scenario should not take the whole report down.
                    eprintln!("bench latency probe skipped for {}: {e}", sched.name());
                    None
                }
            },
        )
        .collect()
}

/// Render the report as a table.
pub fn report(r: &BenchReport) -> String {
    let mut t = metrics::Table::new(&[
        "sched",
        "sim s",
        "wall s",
        "events",
        "events/s",
        "sim-ms per real-ms",
        "max wait ms",
    ]);
    for b in &r.results {
        t.push(&[
            b.sched.clone(),
            format!("{:.2}", b.sim_seconds),
            format!("{:.3}", b.wall_seconds),
            format!("{}", b.events),
            format!("{:.0}", b.events_per_sec),
            format!("{:.1}", b.sim_ms_per_real_ms),
            format!("{:.2}", b.max_runnable_wait_ms),
        ]);
    }
    let mut s = String::from("Simulator throughput (busy 32-core machine, 64 CPU hogs)\n");
    s.push_str(&t.render());
    if !r.latency.is_empty() {
        let mut lt = metrics::Table::new(&[
            "sched",
            "run-delay p50 ms",
            "p99 ms",
            "max ms",
            "wakeup-lat p50 ms",
            "p99 ms",
            "max ms",
        ]);
        for p in &r.latency {
            lt.push(&[
                p.sched.clone(),
                format!("{:.3}", p.run_delay.p50_ms),
                format!("{:.3}", p.run_delay.p99_ms),
                format!("{:.1}", p.run_delay.max_ms),
                format!("{:.3}", p.wakeup_latency.p50_ms),
                format!("{:.3}", p.wakeup_latency.p99_ms),
                format!("{:.1}", p.wakeup_latency.max_ms),
            ]);
        }
        s.push_str(&format!(
            "\nDispatch latency on the fig1 single-core mix (scale {:.2})\n",
            r.latency[0].scale
        ));
        s.push_str(&lt.render());
    }
    s
}

/// One scheduler's regression verdict from [`compare`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct CompareRow {
    /// Scheduler name.
    pub sched: String,
    /// Baseline events/sec.
    pub baseline: f64,
    /// Current events/sec.
    pub current: f64,
    /// Relative change, percent (negative = slower).
    pub delta_pct: f64,
}

/// Outcome of the bench-regression gate.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum Verdict {
    /// Within the warn tolerance.
    Ok,
    /// Slower than the warn tolerance but within the fail tolerance —
    /// CI annotates but stays green.
    Warn,
    /// Slower than the fail tolerance — CI goes red.
    Fail,
}

/// Compare a fresh report against the committed `BENCH_sim.json` baseline
/// text. Regressions beyond `warn_pct` warn; beyond `fail_pct` fail.
/// Speedups never fail (a faster simulator just moves the baseline).
///
/// Wall-clock throughput is noisy across machines, so the gate is
/// deliberately loose: the committed baseline is refreshed whenever the
/// hot path intentionally changes.
pub fn compare(
    baseline_json: &str,
    current: &BenchReport,
    warn_pct: f64,
    fail_pct: f64,
) -> Result<(Vec<CompareRow>, Verdict), String> {
    let base = serde_json::from_str(baseline_json).map_err(|e| format!("bad baseline: {e}"))?;
    let results = base
        .get("results")
        .and_then(|r| r.as_array())
        .ok_or("baseline has no `results` array")?;
    let mut rows = Vec::new();
    let mut verdict = Verdict::Ok;
    for cur in &current.results {
        let Some(b) = results
            .iter()
            .find(|r| r.get("sched").and_then(|s| s.as_str()) == Some(cur.sched.as_str()))
        else {
            return Err(format!("baseline has no entry for {}", cur.sched));
        };
        let baseline = b
            .get("events_per_sec")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("baseline {} has no events_per_sec", cur.sched))?;
        if baseline <= 0.0 {
            return Err(format!(
                "baseline {} events_per_sec is not positive",
                cur.sched
            ));
        }
        let delta_pct = (cur.events_per_sec - baseline) / baseline * 100.0;
        if delta_pct < -fail_pct {
            verdict = Verdict::Fail;
        } else if delta_pct < -warn_pct && verdict == Verdict::Ok {
            verdict = Verdict::Warn;
        }
        rows.push(CompareRow {
            sched: cur.sched.clone(),
            baseline,
            current: cur.events_per_sec,
            delta_pct,
        });
    }
    Ok((rows, verdict))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_nonzero_throughput() {
        let r = run(&RunCfg::at_scale(0.05));
        assert_eq!(r.results.len(), 2);
        for b in &r.results {
            assert!(b.events > 0, "{}: no events processed", b.sched);
            assert!(b.events_per_sec > 0.0);
            assert!(b.sim_ms_per_real_ms > 0.0);
        }
    }

    #[test]
    fn sim_span_is_clamped() {
        assert!((sim_span(0.001) - 0.25).abs() < 1e-12);
        assert!((sim_span(1.0) - 4.0).abs() < 1e-12);
        assert!((sim_span(100.0) - 30.0).abs() < 1e-12);
    }
}
