//! `battle tune` — deterministic parameter search over the scenario corpus.
//!
//! Searches a scheduler's declared parameter space ([`scenario::param_dims`])
//! for a vector that beats the stock defaults on the tournament composite
//! (throughput, p99 run-delay, max starvation wait, Jain fairness),
//! aggregated over a scenario corpus with per-workload-class weights. The
//! search itself lives in the `tune` crate (seeded cross-entropy global
//! phase plus coordinate descent); this module supplies the objective:
//!
//! 1. Run the corpus once with stock parameters — the baseline. Its
//!    per-scenario event counts also size a [`RunBudget`] for every
//!    candidate run (16× stock events), so a livelocked or diverging
//!    candidate is killed by SchedGuard and scores 0 instead of hanging
//!    the search.
//! 2. Each candidate's per-scenario composite is measured *relative to
//!    stock* (ratios capped at 2× so one scenario cannot dominate), then
//!    averaged with the class weights. Stock scores exactly
//!    `(3 + jain) / 4` under this scheme, so tuned-vs-stock composites
//!    are directly comparable.
//!
//! Candidate × scenario runs fan out through
//! [`runner::par_map_supervised`], which returns results in submission
//! order whatever the pool size — the whole report (ASCII, JSON, and the
//! emitted `results/tuned/<sched>.toml`) is byte-identical across
//! `--threads` values.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ::tune::{search, SearchCfg, TrajPoint};
use kernel::RunBudget;
use metrics::table::Table;
use scenario::{EngineError, EngineOpts, Scenario, Sched};
use sched_api::params::{Dim, DimScale, ParamVector};

use crate::{check_mode, runner, scenarios, tournament};

/// Ratio cap for per-metric tuned/stock comparisons: a candidate can earn
/// at most "twice as good as stock" on any one metric, so a single
/// degenerate scenario cannot buy back losses everywhere else.
const REL_CAP: f64 = 2.0;

/// `battle tune` configuration.
#[derive(Debug, Clone)]
pub struct TuneCfg {
    /// Candidate evaluations per scheduler (including the stock default).
    pub budget: usize,
    /// RNG seed (shared by the search and every simulation run).
    pub seed: u64,
    /// Work-volume scale for the corpus runs.
    pub scale: f64,
    /// Schedulers to tune (default: every scheduler with tunables).
    pub scheds: Vec<Sched>,
    /// Write `results/tuned/<sched>.toml` + `table.md` artifacts.
    pub write: bool,
    /// Artifact directory for `--write`.
    pub out_dir: String,
}

impl Default for TuneCfg {
    fn default() -> Self {
        TuneCfg {
            budget: 64,
            seed: 42,
            scale: 1.0,
            scheds: Sched::TUNABLE.to_vec(),
            write: false,
            out_dir: "results/tuned".into(),
        }
    }
}

/// Workload class of a scenario, for the tuned-vs-stock breakdown. New
/// scenarios fall into `misc` until given a class here.
pub fn class_of(name: &str) -> &'static str {
    match name {
        "fig1" => "batch-interactive",
        "fig6" => "spinner-herd",
        "fig7" => "fork-join",
        "bursty-server" => "server",
        "thundering-herd" => "wakeup-storm",
        "numa-imbalance" => "numa",
        "priority-inversion" => "priority",
        "mixed-nice" => "nice-mix",
        _ => "misc",
    }
}

/// Objective weight of a workload class. The paper's headline results are
/// interactivity under batch load and rebalancing herds, so those classes
/// count a little more.
pub fn weight_of(class: &str) -> f64 {
    match class {
        "batch-interactive" => 1.5,
        "spinner-herd" | "wakeup-storm" => 1.25,
        _ => 1.0,
    }
}

/// One (scenario, candidate) measurement, reduced to the scoring metrics.
#[derive(Debug, Clone, Copy)]
struct Meas {
    throughput: f64,
    p99_ms: f64,
    wait_ms: f64,
    jain: f64,
    events: u64,
}

/// Tuned/stock ratio for a "higher is better" metric, capped at
/// [`REL_CAP`].
fn rel_hi(cand: f64, stock: f64) -> f64 {
    if stock <= 0.0 {
        if cand > 0.0 {
            REL_CAP
        } else {
            1.0
        }
    } else {
        (cand / stock).clamp(0.0, REL_CAP)
    }
}

/// Stock/tuned ratio for a "lower is better" metric, capped at
/// [`REL_CAP`]. Zero on both sides is a tie; eliminating a delay stock
/// had earns the cap; introducing one stock lacked scores 0.
fn rel_lo(cand: f64, stock: f64) -> f64 {
    if cand <= 0.0 && stock <= 0.0 {
        1.0
    } else if cand <= 0.0 {
        REL_CAP
    } else if stock <= 0.0 {
        0.0
    } else {
        (stock / cand).clamp(0.0, REL_CAP)
    }
}

/// Per-scenario composite of a candidate measurement relative to stock.
/// `composite_rel(stock, stock)` is exactly `(3 + jain) / 4`.
fn composite_rel(cand: &Meas, stock: &Meas) -> f64 {
    (rel_hi(cand.throughput, stock.throughput)
        + rel_lo(cand.p99_ms, stock.p99_ms)
        + rel_lo(cand.wait_ms, stock.wait_ms)
        + cand.jain.clamp(0.0, 1.0))
        / 4.0
}

/// Run one scenario under one candidate vector. `None` params = stock.
/// Partial (supervision-aborted) and crashed runs come back as `Err`.
fn run_meas(
    sc: &Scenario,
    sched: Sched,
    cfg: &TuneCfg,
    budget: RunBudget,
    params: Option<&ParamVector>,
) -> Result<Meas, String> {
    let opts = EngineOpts {
        scale: cfg.scale,
        seed: cfg.seed,
        check: check_mode(),
        trace_capacity: 0,
        budget,
        cancel: None,
        params: params.cloned(),
    };
    let out = scenario::run_sched(sc, sched, &opts).map_err(|e| match e {
        EngineError::Spec(s) => format!("[{} × {}] {s}", sc.name, sched.name()),
        EngineError::Crash(c) => format!("[{} × {}] crash: {}", sc.name, sched.name(), c.error),
    })?;
    let cell = tournament::cell_of(&out);
    if cell.partial {
        return Err(format!(
            "[{} × {}] aborted by supervision ({})",
            sc.name,
            sched.name(),
            out.run.abort.as_deref().unwrap_or("budget")
        ));
    }
    Ok(Meas {
        throughput: cell.throughput,
        p99_ms: cell.p99_run_delay_ms,
        wait_ms: cell.max_wait_ms,
        jain: cell.jain,
        events: out.run.counters.events,
    })
}

/// One tunable dimension in the report: declared bounds plus the stock and
/// tuned raw values.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DimReport {
    /// Dimension name (the key in the emitted TOML's `[params]`).
    pub name: String,
    /// Scale kind ("linear", "log", "integer", "duration").
    pub scale: String,
    /// Lower bound (raw units; nanoseconds for durations).
    pub lo: f64,
    /// Upper bound (raw units).
    pub hi: f64,
    /// Stock default (raw units).
    pub stock: f64,
    /// Tuned incumbent value (raw units).
    pub tuned: f64,
}

/// Tuned-vs-stock standing of one workload class.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClassRow {
    /// Workload class (see [`class_of`]).
    pub class: String,
    /// Objective weight of the class (see [`weight_of`]).
    pub weight: f64,
    /// Scenarios in the class.
    pub scenarios: usize,
    /// Stock weighted composite over the class.
    pub stock: f64,
    /// Tuned weighted composite over the class.
    pub tuned: f64,
}

/// The full `battle tune` result for one scheduler.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TuneReport {
    /// Scheduler that was tuned.
    pub sched: Sched,
    /// Work-volume scale of the corpus runs.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Requested evaluation budget.
    pub budget: usize,
    /// Evaluations actually spent (dedup never re-scores a vector).
    pub evals: usize,
    /// Scenario names, in corpus order.
    pub scenarios: Vec<String>,
    /// Stock weighted composite over the corpus (evaluation #1).
    pub stock_composite: f64,
    /// Incumbent weighted composite (never below stock).
    pub tuned_composite: f64,
    /// `(tuned - stock) / stock`, percent.
    pub improvement_pct: f64,
    /// Per-dimension bounds and stock/tuned values.
    pub dims: Vec<DimReport>,
    /// The incumbent vector (raw values, dimension order).
    pub incumbent: ParamVector,
    /// Tuned-vs-stock breakdown per workload class.
    pub classes: Vec<ClassRow>,
    /// Best-so-far trajectory, one point per evaluation.
    pub trajectory: Vec<TrajPoint>,
    /// Stock-baseline failures (a failing scenario is dropped from the
    /// objective); empty means the whole corpus scored.
    pub failures: Vec<String>,
}

/// Tune one scheduler over a pre-loaded corpus.
pub fn run(corpus: &[(PathBuf, Scenario)], sched: Sched, cfg: &TuneCfg) -> TuneReport {
    let dims = scenario::param_dims(sched);
    let mut failures: Vec<String> = Vec::new();

    // Stage 1: stock baseline, unbudgeted, fanned out over the corpus.
    let idxs: Vec<usize> = (0..corpus.len()).collect();
    let base_outcomes = runner::par_map_supervised(idxs, |i| {
        run_meas(&corpus[i].1, sched, cfg, RunBudget::default(), None)
    });
    let mut baseline: Vec<Option<Meas>> = Vec::with_capacity(corpus.len());
    for (i, o) in base_outcomes.into_iter().enumerate() {
        match o {
            runner::JobOutcome::Done(Ok(m)) => baseline.push(Some(m)),
            runner::JobOutcome::Done(Err(msg)) => {
                failures.push(format!("stock baseline: {msg}"));
                baseline.push(None);
            }
            runner::JobOutcome::Panicked(msg) => {
                failures.push(format!(
                    "stock baseline: [{} × {}] panic: {msg}",
                    corpus[i].1.name,
                    sched.name()
                ));
                baseline.push(None);
            }
        }
    }

    // Scenarios that score: stock completed, so ratios are well defined.
    let scored: Vec<usize> = (0..corpus.len())
        .filter(|&i| baseline[i].is_some())
        .collect();
    let weights: Vec<f64> = scored
        .iter()
        .map(|&i| weight_of(class_of(&corpus[i].1.name)))
        .collect();
    let wsum: f64 = weights.iter().sum();

    // Candidate runs get 16× the stock event count before SchedGuard kills
    // them: generous for any sane config, tight enough that a tick-storm
    // or livelock candidate dies quickly and scores 0.
    let cand_budget = |i: usize| RunBudget {
        max_events: baseline[i].map(|m| m.events.saturating_mul(16).saturating_add(65_536)),
        ..RunBudget::default()
    };

    // Per-candidate measurements, keyed by the vector's bit pattern, so
    // the class breakdown below reuses the search's own runs.
    let meas_cache: RefCell<HashMap<Vec<u64>, Vec<Option<Meas>>>> = RefCell::new(HashMap::new());

    let objective = |batch: &[ParamVector]| -> Vec<f64> {
        // Fan out candidate × scenario; submission order fixes result
        // order, so scoring is thread-count independent.
        let jobs: Vec<(usize, usize)> = (0..batch.len())
            .flat_map(|b| scored.iter().map(move |&i| (b, i)))
            .collect();
        let outcomes = runner::par_map_supervised(jobs, |(b, i)| {
            run_meas(&corpus[i].1, sched, cfg, cand_budget(i), Some(&batch[b]))
        });
        let mut per_cand: Vec<Vec<Option<Meas>>> = vec![Vec::new(); batch.len()];
        for ((b, _), o) in (0..batch.len())
            .flat_map(|b| scored.iter().map(move |&i| (b, i)))
            .zip(outcomes)
        {
            per_cand[b].push(match o {
                runner::JobOutcome::Done(Ok(m)) => Some(m),
                _ => None, // diverged, crashed or panicked: scores 0 below
            });
        }
        batch
            .iter()
            .zip(per_cand)
            .map(|(v, meas)| {
                let score = if wsum > 0.0 {
                    scored
                        .iter()
                        .zip(&meas)
                        .zip(&weights)
                        .map(|((&i, m), w)| match m {
                            Some(m) => w * composite_rel(m, &baseline[i].unwrap()),
                            None => 0.0,
                        })
                        .sum::<f64>()
                        / wsum
                } else {
                    0.0
                };
                meas_cache.borrow_mut().insert(v.bits_key(), meas);
                score
            })
            .collect()
    };

    let scfg = SearchCfg {
        budget: cfg.budget,
        seed: cfg.seed,
        ..SearchCfg::default()
    };
    let result = search(&dims, &scfg, objective);

    // Class breakdown from the cached incumbent + stock measurements.
    let cache = meas_cache.borrow();
    let stock_meas = cache
        .get(&ParamVector::defaults(&dims).bits_key())
        .cloned()
        .unwrap_or_default();
    let tuned_meas = cache
        .get(&result.incumbent.bits_key())
        .cloned()
        .unwrap_or_default();
    let mut classes: Vec<ClassRow> = Vec::new();
    for (k, &i) in scored.iter().enumerate() {
        let class = class_of(&corpus[i].1.name);
        let stock_c = stock_meas
            .get(k)
            .and_then(|m| m.as_ref())
            .map(|m| composite_rel(m, &baseline[i].unwrap()))
            .unwrap_or(0.0);
        let tuned_c = tuned_meas
            .get(k)
            .and_then(|m| m.as_ref())
            .map(|m| composite_rel(m, &baseline[i].unwrap()))
            .unwrap_or(0.0);
        match classes.iter_mut().find(|r| r.class == class) {
            Some(row) => {
                let n = row.scenarios as f64;
                row.stock = (row.stock * n + stock_c) / (n + 1.0);
                row.tuned = (row.tuned * n + tuned_c) / (n + 1.0);
                row.scenarios += 1;
            }
            None => classes.push(ClassRow {
                class: class.to_string(),
                weight: weight_of(class),
                scenarios: 1,
                stock: stock_c,
                tuned: tuned_c,
            }),
        }
    }

    let stock_vec = ParamVector::defaults(&dims);
    let dim_reports: Vec<DimReport> = dims
        .iter()
        .enumerate()
        .map(|(i, d)| DimReport {
            name: d.name.to_string(),
            scale: d.scale.label().to_string(),
            lo: d.lo,
            hi: d.hi,
            stock: stock_vec.value(i, &dims),
            tuned: result.incumbent.value(i, &dims),
        })
        .collect();

    let improvement_pct = if result.stock_score > 0.0 {
        (result.incumbent_score - result.stock_score) / result.stock_score * 100.0
    } else {
        0.0
    };
    TuneReport {
        sched,
        scale: cfg.scale,
        seed: cfg.seed,
        budget: cfg.budget,
        evals: result.evals,
        scenarios: corpus.iter().map(|(_, sc)| sc.name.clone()).collect(),
        stock_composite: result.stock_score,
        tuned_composite: result.incumbent_score,
        improvement_pct,
        dims: dim_reports,
        incumbent: result.incumbent,
        classes,
        trajectory: result.trajectory,
        failures,
    }
}

/// Human-readable raw value: durations as ns/µs/ms/s, integers bare,
/// floats with shortest round-trip formatting.
fn fmt_val(d: &Dim, raw: f64) -> String {
    match d.scale {
        DimScale::Duration => {
            let ns = raw;
            if ns >= 1e9 {
                format!("{:.3}s", ns / 1e9)
            } else if ns >= 1e6 {
                format!("{:.3}ms", ns / 1e6)
            } else if ns >= 1e3 {
                format!("{:.3}µs", ns / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        DimScale::Integer => format!("{}", raw as i64),
        DimScale::Linear | DimScale::Log => format!("{raw:?}"),
    }
}

/// Render the ASCII report: summary, per-class tuned-vs-stock table, and
/// the parameter table.
pub fn render(r: &TuneReport) -> String {
    let mut s = format!(
        "tune: {} over {} scenario(s), budget {} (scale {}, seed {})\n",
        r.sched.name(),
        r.scenarios.len(),
        r.budget,
        r.scale,
        r.seed
    );
    s.push_str(&format!(
        "evals {}: stock composite {:.4} -> tuned {:.4} ({:+.2} %)\n\n",
        r.evals, r.stock_composite, r.tuned_composite, r.improvement_pct
    ));

    let mut classes = Table::new(&["class", "weight", "scenarios", "stock", "tuned", "delta"]);
    for c in &r.classes {
        let delta = if c.stock > 0.0 {
            format!("{:+.2} %", (c.tuned - c.stock) / c.stock * 100.0)
        } else {
            "n/a".to_string()
        };
        classes.push(&[
            c.class.clone(),
            format!("{:.2}", c.weight),
            c.scenarios.to_string(),
            format!("{:.4}", c.stock),
            format!("{:.4}", c.tuned),
            delta,
        ]);
    }
    s.push_str(&classes.render());
    s.push('\n');

    let dims = scenario::param_dims(r.sched);
    let mut params = Table::new(&["param", "scale", "range", "stock", "tuned"]);
    for (d, dr) in dims.iter().zip(&r.dims) {
        params.push(&[
            dr.name.clone(),
            dr.scale.clone(),
            format!("{} .. {}", fmt_val(d, dr.lo), fmt_val(d, dr.hi)),
            fmt_val(d, dr.stock),
            fmt_val(d, dr.tuned),
        ]);
    }
    s.push_str(&params.render());
    if !r.failures.is_empty() {
        s.push('\n');
        for f in &r.failures {
            s.push_str(&format!("FAIL {f}\n"));
        }
    }
    s
}

/// The committed tuned-parameters artifact: a TOML file readable by both
/// humans and `scenario::toml::parse` (the validation test re-parses it
/// and checks every value against the declared bounds).
pub fn tuned_toml(r: &TuneReport) -> String {
    let dims = scenario::param_dims(r.sched);
    let mut s = format!(
        "# `battle tune` incumbent for {}.\n\
         # Reproduce: battle tune scenarios --sched {} --budget {} --seed {} --scale {}\n\
         sched = \"{}\"\nseed = {}\nbudget = {}\nscale = {:?}\n\
         stock_composite = {:?}\ntuned_composite = {:?}\n\n[params]\n",
        r.sched.name(),
        r.sched.flag_name(),
        r.budget,
        r.seed,
        r.scale,
        r.sched.flag_name(),
        r.seed,
        r.budget,
        r.scale,
        r.stock_composite,
        r.tuned_composite,
    );
    for (d, dr) in dims.iter().zip(&r.dims) {
        if d.scale.discrete() {
            s.push_str(&format!("{} = {}\n", dr.name, dr.tuned as i64));
        } else {
            s.push_str(&format!("{} = {:?}\n", dr.name, dr.tuned));
        }
    }
    s
}

/// JSON envelope for `battle tune --json`: one report per scheduler.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TuneBatch {
    /// Reports, in requested scheduler order.
    pub reports: Vec<TuneReport>,
}

/// CLI entry: load the corpus, tune each scheduler, print reports,
/// optionally write JSON and the committed TOML/table artifacts. Returns
/// `false` on baseline failures, a tuned composite below stock, or I/O
/// errors.
pub fn cli(paths: &[String], cfg: &TuneCfg, json: &Option<String>) -> bool {
    let corpus = match scenarios::load(paths) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let mut ok = true;
    let mut reports = Vec::new();
    for &sched in &cfg.scheds {
        if scenario::param_dims(sched).is_empty() {
            eprintln!("{} has no tunables, skipping", sched.name());
            continue;
        }
        let r = run(&corpus, sched, cfg);
        print!("{}", render(&r));
        println!();
        ok &= r.failures.is_empty();
        // The searcher's contract: the incumbent never loses to stock.
        ok &= r.tuned_composite >= r.stock_composite;
        reports.push(r);
    }
    if cfg.write {
        let dir = Path::new(&cfg.out_dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return false;
        }
        let mut table_md = String::from("# `battle tune` — tuned vs stock\n");
        for r in &reports {
            let p = dir.join(format!("{}.toml", r.sched.flag_name()));
            if let Err(e) = std::fs::write(&p, tuned_toml(r)) {
                eprintln!("cannot write {}: {e}", p.display());
                ok = false;
            }
            table_md.push_str(&format!("\n```\n{}```\n", render(r)));
        }
        let tp = dir.join("table.md");
        if let Err(e) = std::fs::write(&tp, table_md) {
            eprintln!("cannot write {}: {e}", tp.display());
            ok = false;
        }
    }
    if let Some(p) = json {
        let batch = TuneBatch { reports };
        match serde_json::to_string_pretty(&batch) {
            Ok(s) => {
                if let Err(e) = std::fs::write(p, s) {
                    eprintln!("cannot write {p}: {e}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize report for {p}: {e}");
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_scores_are_capped_and_anchored() {
        let stock = Meas {
            throughput: 100.0,
            p99_ms: 2.0,
            wait_ms: 10.0,
            jain: 0.9,
            events: 1000,
        };
        // Stock vs itself: (1 + 1 + 1 + jain) / 4.
        assert!((composite_rel(&stock, &stock) - (3.0 + 0.9) / 4.0).abs() < 1e-12);
        // A 10× better candidate is capped at 2× per metric.
        let fast = Meas {
            throughput: 1000.0,
            p99_ms: 0.2,
            wait_ms: 1.0,
            jain: 1.0,
            events: 1000,
        };
        assert!((composite_rel(&fast, &stock) - (2.0 + 2.0 + 2.0 + 1.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn rel_edges() {
        assert_eq!(rel_hi(5.0, 0.0), REL_CAP);
        assert_eq!(rel_hi(0.0, 0.0), 1.0);
        assert_eq!(rel_lo(0.0, 0.0), 1.0);
        assert_eq!(rel_lo(0.0, 3.0), REL_CAP);
        assert_eq!(rel_lo(3.0, 0.0), 0.0);
    }

    #[test]
    fn every_scenario_has_a_class_and_weight() {
        for name in ["fig1", "fig6", "fig7", "bursty-server", "whatever"] {
            let c = class_of(name);
            assert!(weight_of(c) > 0.0);
        }
    }
}
