//! Figures 3 & 4: starvation *within* a single application — sysbench with
//! 128 threads on one core under ULE (§5.2).
//!
//! "The first threads are created with an interactivity penalty below the
//! interactive threshold, while the remaining threads are created with an
//! interactivity penalty above it. (...) The latter threads sysbench may
//! starve forever."

use metrics::TimeSeries;
use simcore::{Dur, Time};
use workloads::sysbench::{sysbench, SysbenchCfg};

use crate::{make_kernel, RunCfg, Sched};

/// Result of the single-app starvation experiment.
#[derive(Debug, serde::Serialize)]
pub struct Fig34 {
    /// Normalised cumulative runtime of the master thread.
    pub master_runtime: TimeSeries,
    /// Mean normalised runtime of threads that executed ("interactive").
    pub interactive_runtime: TimeSeries,
    /// Mean normalised runtime of threads that starved ("background").
    pub background_runtime: TimeSeries,
    /// Mean penalty of the interactive group (Figure 4, bottom curves).
    pub interactive_penalty: TimeSeries,
    /// Mean penalty of the background group (Figure 4, top curves).
    pub background_penalty: TimeSeries,
    /// Number of worker threads classified interactive at spawn.
    pub interactive_count: usize,
    /// Number of worker threads that starved.
    pub background_count: usize,
}

/// Run on ULE (the experiment is specific to ULE's classification).
pub fn run(cfg: &RunCfg) -> Fig34 {
    let topo = topology::Topology::single_core();
    let mut k = make_kernel(&topo, Sched::Ule, cfg.seed);
    let sb_cfg = SysbenchCfg {
        threads: 128,
        total_tx: ((250_000.0 * cfg.scale).round() as u64).max(500),
        ..Default::default()
    };
    let spec = sysbench(&mut k, sb_cfg);
    let app = k.queue_app(Time::ZERO, spec);

    // Let the master finish spawning so the 129 tasks exist, then record
    // each worker's classification at spawn time.
    let horizon = Dur::secs_f64((140.0 * cfg.scale).max(20.0));
    let step = Dur::secs_f64((1.0 * cfg.scale).max(0.05));
    // The master needs 128 × 25 ms ≈ 3.2 s of CPU to initialise and fork
    // everything (workers wait at the start gate meanwhile), independent of
    // the transaction-budget scale.
    let spawn_wait = Dur::secs_f64(4.5);
    k.run_until(Time::ZERO + spawn_wait);
    let tasks = k.app_tasks(app);
    let master = tasks[0];
    let workers: Vec<_> = tasks[1..].to_vec();
    let mut interactive = Vec::new();
    let mut background = Vec::new();
    for &t in &workers {
        match k.snapshot(t).interactive {
            Some(true) => interactive.push(t),
            _ => background.push(t),
        }
    }

    let mut out = Fig34 {
        master_runtime: TimeSeries::new("master"),
        interactive_runtime: TimeSeries::new("interactive threads"),
        background_runtime: TimeSeries::new("background threads"),
        interactive_penalty: TimeSeries::new("interactive penalty"),
        background_penalty: TimeSeries::new("background penalty"),
        interactive_count: interactive.len(),
        background_count: background.len(),
    };

    let norm = |v: f64, max: f64| if max > 0.0 { v / max } else { 0.0 };
    let limit = Time::ZERO + horizon;
    while k.now() < limit {
        let next = k.now() + step;
        k.run_until(next);
        let mrt = k.task_runtime(master).as_secs_f64();
        let mean_rt = |set: &[sched_api::Tid]| -> f64 {
            if set.is_empty() {
                return 0.0;
            }
            set.iter()
                .map(|&t| k.task_runtime(t).as_secs_f64())
                .sum::<f64>()
                / set.len() as f64
        };
        let mean_pen = |set: &[sched_api::Tid]| -> Option<f64> {
            let vals: Vec<f64> = set
                .iter()
                .filter_map(|&t| k.snapshot(t).ule_penalty.map(|p| p as f64))
                .collect();
            if vals.is_empty() {
                None
            } else {
                Some(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        };
        let irt = mean_rt(&interactive);
        let brt = mean_rt(&background);
        let max = mrt.max(irt).max(brt).max(1e-12);
        out.master_runtime.push(k.now(), norm(mrt, max));
        out.interactive_runtime.push(k.now(), norm(irt, max));
        out.background_runtime.push(k.now(), norm(brt, max));
        if let Some(p) = mean_pen(&interactive) {
            out.interactive_penalty.push(k.now(), p);
        }
        if let Some(p) = mean_pen(&background) {
            out.background_penalty.push(k.now(), p);
        }
        if k.all_apps_done() {
            break;
        }
    }
    out
}

/// Render both figures.
pub fn report(f: &Fig34) -> String {
    let mut s = String::from("Figure 3 — normalised cumulative runtime (ULE, 128 threads)\n");
    s.push_str(&TimeSeries::ascii_chart(
        &[
            &f.master_runtime,
            &f.interactive_runtime,
            &f.background_runtime,
        ],
        72,
        12,
    ));
    s.push_str(&format!(
        "\n{} threads classified interactive, {} background (paper: 80 / 48)\n",
        f.interactive_count, f.background_count
    ));
    s.push_str("\nFigure 4 — interactivity penalty of the two groups\n");
    s.push_str(&TimeSeries::ascii_chart(
        &[&f.interactive_penalty, &f.background_penalty],
        72,
        10,
    ));
    s
}

/// Qualitative checks from §5.2.
pub fn validate(f: &Fig34) -> Vec<String> {
    let mut bad = Vec::new();
    // A substantial split into interactive and background groups.
    if f.interactive_count < 40 || f.background_count < 10 {
        bad.push(format!(
            "expected a split like 80/48, got {}/{}",
            f.interactive_count, f.background_count
        ));
    }
    // Background threads starve: essentially no runtime mid-experiment.
    let mid = f.background_runtime.points.len() / 2;
    if let Some(&(_, brt)) = f.background_runtime.points.get(mid) {
        let irt = f.interactive_runtime.points[mid].1;
        if !(brt < 0.2 * irt.max(1e-9)) {
            bad.push(format!(
                "background threads not starved: {brt:.3} vs interactive {irt:.3}"
            ));
        }
    }
    // Penalty separation: interactive drops low, background stays high.
    if let (Some(i), Some(b)) = (
        f.interactive_penalty.points.get(mid).map(|&(_, v)| v),
        f.background_penalty.points.get(mid).map(|&(_, v)| v),
    ) {
        if !(i < 30.0 && b >= 30.0) {
            bad.push(format!("penalty groups not separated: {i:.0} vs {b:.0}"));
        }
    }
    bad
}
