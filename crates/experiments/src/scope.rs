//! SchedScope: exportable scheduling traces and trace-derived analyses.
//!
//! `battle trace <fig> --out trace.json` renders the kernel's flight
//! recorder as Chrome-trace/Perfetto JSON: one track per CPU whose slices
//! are the running tasks (from `Switch`/`Idle` events), instant markers
//! for wakeups, exits, preemptions, migrations, hotplug and fault events,
//! and flow arrows from each waker to its wakee's next dispatch. Load the
//! file in <https://ui.perfetto.dev> (or `chrome://tracing`) to scrub
//! through a run visually.
//!
//! Two export modes:
//!
//! * **buffered** (default): the run records into an in-memory flight
//!   recorder that is rendered after the fact. Bounded by the ring's
//!   capacity — long runs lose their oldest events (reported as
//!   `trace_dropped`).
//! * **streaming** (`--stream`): a [`TraceSink`] writes every event to
//!   disk as it happens, so full-scale runs export complete traces without
//!   an unbounded buffer.
//!
//! Alongside the export, an [`Analyzer`] aggregates the same event stream
//! into the §5.3/§6 analyses: preemption attribution by cause and by
//! (preemptor, victim) pair — validating the paper's "1 preemption per
//! request" apache claim — and a per-core migration timeline for the
//! Figure 6 rebalancing story.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::rc::Rc;

use kernel::{Kernel, TraceEvent, TraceSink};
use sched_api::{TaskTable, Tid};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use workloads::{phoronix::cray, phoronix::CrayCfg, synthetic, sysbench::SysbenchCfg, P};

use crate::{make_kernel, obs_of, RunCfg, Sched, SchedObs};

/// Figures `battle trace` can export.
pub const FIGS: [&str; 4] = ["fig1", "fig5", "fig6", "fig7"];

/// Flight-recorder capacity used in buffered mode (events).
pub const BUFFERED_CAPACITY: usize = 1 << 20;

// ---------------------------------------------------------------------
// Chrome-trace writer
// ---------------------------------------------------------------------

/// A slice currently open on one CPU track.
struct OpenSlice {
    start: Time,
    name: String,
    tid: Tid,
}

/// Incremental Chrome-trace (JSON Array Format) writer.
///
/// One *process* per scheduler group (`begin_group`), one *thread* per
/// CPU; task executions become `"ph":"X"` complete slices, everything
/// else becomes `"ph":"i"` instants, and wakeups additionally draw
/// `"s"`/`"f"` flow arrows from the waker to the wakee's next dispatch.
/// I/O errors are sticky and surface from [`ChromeTrace::finish`].
pub struct ChromeTrace<W: Write> {
    out: W,
    wrote_any: bool,
    err: Option<String>,
    pid: u32,
    open: Vec<Option<OpenSlice>>,
    /// Dense tid-indexed table: which CPU a task currently occupies a
    /// slice on ([`NO_CPU`] when none). Indexed on every switch event, so
    /// a flat vector beats hashing.
    running: Vec<u32>,
    /// Dense tid-indexed table: pending wakeup flow-arrow id per task
    /// (0 when none; real ids start at 1).
    pending_flow: Vec<u64>,
    next_flow: u64,
    events: u64,
    slices: u64,
}

/// Vacant sentinel for [`ChromeTrace::running`].
const NO_CPU: u32 = u32::MAX;

/// Nanoseconds as a microsecond JSON number with fixed 3-digit fraction
/// (Chrome-trace timestamps are microseconds; fixed formatting keeps the
/// output byte-deterministic).
fn us(t: u64) -> String {
    format!("{}.{:03}", t / 1_000, t % 1_000)
}

/// Minimal JSON string escape (task names are short ASCII identifiers,
/// but never trust an un-escaped string into a file format).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<W: Write> ChromeTrace<W> {
    /// Start a trace document on `out`.
    pub fn new(mut out: W) -> ChromeTrace<W> {
        let err = out
            .write_all(b"{\"traceEvents\":[\n")
            .err()
            .map(|e| e.to_string());
        ChromeTrace {
            out,
            wrote_any: false,
            err,
            pid: 0,
            open: Vec::new(),
            running: Vec::new(),
            pending_flow: Vec::new(),
            next_flow: 1,
            events: 0,
            slices: 0,
        }
    }

    /// Events emitted so far (including metadata records).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Task slices emitted so far.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// The CPU `tid` currently has an open slice on, if any.
    fn running_get(&self, tid: Tid) -> Option<CpuId> {
        match self.running.get(tid.index()).copied() {
            Some(NO_CPU) | None => None,
            Some(c) => Some(CpuId(c)),
        }
    }

    /// Record that `tid` occupies `cpu` (grows the table on first sight).
    fn running_set(&mut self, tid: Tid, cpu: CpuId) {
        if tid.index() >= self.running.len() {
            self.running.resize(tid.index() + 1, NO_CPU);
        }
        self.running[tid.index()] = cpu.0;
    }

    /// Record that `tid` no longer occupies any CPU.
    fn running_unset(&mut self, tid: Tid) {
        if let Some(slot) = self.running.get_mut(tid.index()) {
            *slot = NO_CPU;
        }
    }

    /// Take `tid`'s pending wakeup flow id, if one is armed.
    fn flow_take(&mut self, tid: Tid) -> Option<u64> {
        match self.pending_flow.get_mut(tid.index()) {
            Some(id) if *id != 0 => Some(std::mem::take(id)),
            _ => None,
        }
    }

    /// Arm a wakeup flow arrow for `tid`'s next dispatch.
    fn flow_set(&mut self, tid: Tid, id: u64) {
        if tid.index() >= self.pending_flow.len() {
            self.pending_flow.resize(tid.index() + 1, 0);
        }
        self.pending_flow[tid.index()] = id;
    }

    /// Begin a new scheduler group: Chrome-trace process `pid` named
    /// `name`, with one named thread per CPU. Resets all per-run state.
    pub fn begin_group(&mut self, pid: u32, name: &str, ncpu: usize) {
        self.pid = pid;
        self.open = (0..ncpu).map(|_| None).collect();
        self.running.clear();
        self.pending_flow.clear();
        self.raw(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
        self.raw(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_sort_index\",\
             \"args\":{{\"sort_index\":{pid}}}}}"
        ));
        for cpu in 0..ncpu {
            self.raw(format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{cpu},\
                 \"name\":\"thread_name\",\"args\":{{\"name\":\"cpu{cpu}\"}}}}"
            ));
        }
    }

    /// Close every still-open slice at `now` (end of a group's run).
    pub fn end_group(&mut self, now: Time) {
        for cpu in 0..self.open.len() {
            self.close(CpuId(cpu as u32), now);
        }
        self.pending_flow.clear();
        self.running.clear();
    }

    /// Terminate the JSON document and flush. Returns the total events
    /// written, or the first I/O error encountered anywhere along the way.
    pub fn finish(mut self) -> Result<u64, String> {
        if let Err(e) = self
            .out
            .write_all(b"\n]}\n")
            .and_then(|()| self.out.flush())
        {
            self.err.get_or_insert(e.to_string());
        }
        match self.err {
            Some(e) => Err(e),
            None => Ok(self.events),
        }
    }

    fn raw(&mut self, json: String) {
        if self.err.is_some() {
            return;
        }
        let sep: &[u8] = if self.wrote_any { b",\n" } else { b"" };
        if let Err(e) = self
            .out
            .write_all(sep)
            .and_then(|()| self.out.write_all(json.as_bytes()))
        {
            self.err = Some(e.to_string());
            return;
        }
        self.wrote_any = true;
        self.events += 1;
    }

    fn close(&mut self, cpu: CpuId, at: Time) {
        let Some(slot) = self.open.get_mut(cpu.index()) else {
            return;
        };
        let Some(s) = slot.take() else { return };
        let dur = at.as_nanos().saturating_sub(s.start.as_nanos());
        let (pid, tid) = (self.pid, s.tid.0);
        self.raw(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"cat\":\"task\",\"name\":\"{}\",\"args\":{{\"tid\":{tid}}}}}",
            cpu.0,
            us(s.start.as_nanos()),
            us(dur),
            s.name,
        ));
        self.slices += 1;
        self.running_unset(s.tid);
    }

    fn instant(&mut self, cpu: CpuId, at: Time, name: &str, args: String) {
        let pid = self.pid;
        self.raw(format!(
            "{{\"ph\":\"i\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"s\":\"t\",\
             \"cat\":\"sched\",\"name\":\"{name}\",\"args\":{{{args}}}}}",
            cpu.0,
            us(at.as_nanos()),
        ));
    }

    /// Render one event (the [`TraceSink`] entry point, also used for
    /// post-run buffered replays).
    pub fn event(&mut self, ev: &TraceEvent, tasks: &TaskTable) {
        match *ev {
            TraceEvent::Switch { at, cpu, to, .. } => {
                self.close(cpu, at);
                if let Some(id) = self.flow_take(to) {
                    let pid = self.pid;
                    self.raw(format!(
                        "{{\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"pid\":{pid},\
                         \"tid\":{},\"ts\":{},\"cat\":\"wake\",\"name\":\"wake\"}}",
                        cpu.0,
                        us(at.as_nanos()),
                    ));
                }
                if let Some(slot) = self.open.get_mut(cpu.index()) {
                    *slot = Some(OpenSlice {
                        start: at,
                        name: esc(&tasks.get(to).name),
                        tid: to,
                    });
                }
                self.running_set(to, cpu);
            }
            TraceEvent::Idle { at, cpu } => self.close(cpu, at),
            TraceEvent::Wakeup {
                at,
                tid,
                cpu,
                waker,
            } => {
                let src = waker.and_then(|w| self.running_get(w)).unwrap_or(cpu);
                let id = self.next_flow;
                self.next_flow += 1;
                let by = waker
                    .map(|w| format!(",\"waker\":\"{}\"", esc(&tasks.get(w).name)))
                    .unwrap_or_default();
                self.instant(
                    cpu,
                    at,
                    &format!("wakeup {}", esc(&tasks.get(tid).name)),
                    format!("\"tid\":{}{by}", tid.0),
                );
                let pid = self.pid;
                self.raw(format!(
                    "{{\"ph\":\"s\",\"id\":{id},\"pid\":{pid},\"tid\":{},\
                     \"ts\":{},\"cat\":\"wake\",\"name\":\"wake\"}}",
                    src.0,
                    us(at.as_nanos()),
                ));
                self.flow_set(tid, id);
            }
            TraceEvent::Exit { at, tid } => {
                let cpu = self.running_get(tid).unwrap_or(CpuId(0));
                self.instant(
                    cpu,
                    at,
                    &format!("exit {}", esc(&tasks.get(tid).name)),
                    format!("\"tid\":{}", tid.0),
                );
                self.flow_take(tid);
            }
            TraceEvent::Hotplug { at, cpu, online } => {
                if !online {
                    self.close(cpu, at);
                }
                self.instant(
                    cpu,
                    at,
                    if online { "cpu online" } else { "cpu offline" },
                    String::new(),
                );
            }
            TraceEvent::SpuriousWake { at, tid } => {
                self.instant(
                    CpuId(0),
                    at,
                    &format!("spurious-wake {}", esc(&tasks.get(tid).name)),
                    format!("\"tid\":{}", tid.0),
                );
            }
            TraceEvent::Preempt {
                at,
                cpu,
                victim,
                by,
                cause,
            } => {
                let by = by
                    .map(|b| format!(",\"by\":\"{}\"", esc(&tasks.get(b).name)))
                    .unwrap_or_default();
                self.instant(
                    cpu,
                    at,
                    &format!("preempt:{}", cause.name()),
                    format!("\"victim\":\"{}\"{by}", esc(&tasks.get(victim).name)),
                );
            }
            TraceEvent::Migrate { at, tid, from, to } => {
                self.instant(
                    to,
                    at,
                    &format!("migrate {}", esc(&tasks.get(tid).name)),
                    format!("\"from\":{},\"to\":{}", from.0, to.0),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Trace analyses
// ---------------------------------------------------------------------

/// A preemption-cause tally row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CauseCount {
    /// [`sched_api::PreemptCause::name`].
    pub cause: String,
    /// Preemptions with that cause.
    pub count: u64,
}

/// A (preemptor, victim) attribution row. Task names are collapsed to
/// their "comm" (trailing `-N` / digit suffixes stripped) so the 80
/// sysbench workers aggregate into one row.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PreemptPair {
    /// Who triggered the preemption (`"tick"` for tick-driven ones).
    pub by: String,
    /// Who lost the CPU.
    pub victim: String,
    /// How often.
    pub count: u64,
}

/// Migrations observed in one one-second bucket.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MigrationSlot {
    /// Bucket start (seconds of simulated time).
    pub t_s: f64,
    /// Migrations whose dispatch landed in the bucket.
    pub count: u64,
}

/// Aggregated trace-derived analysis of one run (serialized into the
/// `battle trace --json` report).
#[derive(Debug, Clone, serde::Serialize)]
pub struct TraceAnalysis {
    /// Wakeup events seen.
    pub wakeups: u64,
    /// Preemptions by cause.
    pub preemptions: Vec<CauseCount>,
    /// Preemption attribution, heaviest pairs first (top 12).
    pub preempt_pairs: Vec<PreemptPair>,
    /// Migration (cross-CPU dispatch) events seen.
    pub migrations: u64,
    /// Per-second migration timeline (Figure 6's rebalancing pulse).
    pub migration_timeline: Vec<MigrationSlot>,
    /// Migration arrivals per destination core.
    pub migration_arrivals_per_core: Vec<u64>,
}

/// Streaming aggregator producing a [`TraceAnalysis`].
#[derive(Debug, Default)]
pub struct Analyzer {
    wakeups: u64,
    by_cause: BTreeMap<&'static str, u64>,
    pairs: BTreeMap<(String, String), u64>,
    migrations: u64,
    slots: BTreeMap<u64, u64>,
    per_core: BTreeMap<u32, u64>,
}

/// Collapse a task name to its application "comm": `ab-17` → `ab`,
/// `worker3` → `worker`.
fn comm(name: &str) -> String {
    let s = name
        .trim_end_matches(|c: char| c.is_ascii_digit())
        .trim_end_matches('-');
    if s.is_empty() { name } else { s }.to_string()
}

impl Analyzer {
    /// Observe one event.
    pub fn event(&mut self, ev: &TraceEvent, tasks: &TaskTable) {
        match *ev {
            TraceEvent::Wakeup { .. } => self.wakeups += 1,
            TraceEvent::Preempt {
                victim, by, cause, ..
            } => {
                *self.by_cause.entry(cause.name()).or_insert(0) += 1;
                let by = match by {
                    Some(b) => comm(&tasks.get(b).name),
                    None => "tick".to_string(),
                };
                *self
                    .pairs
                    .entry((by, comm(&tasks.get(victim).name)))
                    .or_insert(0) += 1;
            }
            TraceEvent::Migrate { at, to, .. } => {
                self.migrations += 1;
                *self.slots.entry(at.as_nanos() / 1_000_000_000).or_insert(0) += 1;
                *self.per_core.entry(to.0).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// Produce the serializable analysis.
    pub fn analysis(&self) -> TraceAnalysis {
        let mut pairs: Vec<PreemptPair> = self
            .pairs
            .iter()
            .map(|((by, victim), &count)| PreemptPair {
                by: by.clone(),
                victim: victim.clone(),
                count,
            })
            .collect();
        pairs.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.by.cmp(&b.by)));
        pairs.truncate(12);
        let ncore = self
            .per_core
            .keys()
            .max()
            .map(|&c| c as usize + 1)
            .unwrap_or(0);
        let mut arrivals = vec![0u64; ncore];
        for (&c, &n) in &self.per_core {
            arrivals[c as usize] = n;
        }
        TraceAnalysis {
            wakeups: self.wakeups,
            preemptions: self
                .by_cause
                .iter()
                .map(|(&cause, &count)| CauseCount {
                    cause: cause.to_string(),
                    count,
                })
                .collect(),
            preempt_pairs: pairs,
            migrations: self.migrations,
            migration_timeline: self
                .slots
                .iter()
                .map(|(&s, &count)| MigrationSlot {
                    t_s: s as f64,
                    count,
                })
                .collect(),
            migration_arrivals_per_core: arrivals,
        }
    }
}

/// [`TraceSink`] adapter fanning events out to the shared writer and
/// analyzer (the kernel owns the sink box; the caller keeps `Rc` clones).
struct ScopeSink<W: Write> {
    trace: Rc<RefCell<ChromeTrace<W>>>,
    analyzer: Rc<RefCell<Analyzer>>,
}

impl<W: Write> TraceSink for ScopeSink<W> {
    fn event(&mut self, ev: &TraceEvent, tasks: &TaskTable) {
        self.trace.borrow_mut().event(ev, tasks);
        self.analyzer.borrow_mut().event(ev, tasks);
    }
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// The machine a figure's scenario runs on.
pub fn topology_of(fig: &str) -> Result<Topology, String> {
    match fig {
        "fig1" | "fig5" => Ok(Topology::single_core()),
        "fig6" | "fig7" => Ok(Topology::opteron_6172()),
        other => Err(format!(
            "no trace scenario for {other} (have: {})",
            FIGS.join(" ")
        )),
    }
}

/// Build and run one figure's scenario under `sched`, with an optional
/// streaming sink and/or flight-recorder capacity installed beforehand.
/// Returns the finished kernel and the ops completed by the scenario's
/// application of interest (requests for apache, transactions for
/// sysbench; 0 where ops are meaningless).
pub fn run_scenario(
    fig: &str,
    sched: Sched,
    cfg: &RunCfg,
    sink: Option<Box<dyn TraceSink>>,
    capacity: usize,
) -> Result<(Kernel, u64), String> {
    let topo = topology_of(fig)?;
    let mut k = make_kernel(&topo, sched, cfg.seed);
    if capacity > 0 {
        k.set_trace_capacity(capacity);
    }
    if let Some(s) = sink {
        k.set_trace_sink(s);
    }
    let ops_app = match fig {
        "fig1" => {
            // Figure 1's single-core interactivity mix: fibo + sysbench.
            k.queue_app(
                Time::ZERO,
                synthetic::fibo(Dur::secs_f64(160.0 * cfg.scale)),
            );
            let sb = SysbenchCfg {
                threads: 80,
                total_tx: ((260_000.0 * cfg.scale).round() as u64).max(500),
                ..Default::default()
            };
            let spec = workloads::sysbench::sysbench(&mut k, sb);
            let app = k.queue_app(Time::ZERO + Dur::secs_f64(7.0 * cfg.scale), spec);
            let limit = Time::ZERO + Dur::secs_f64(420.0 * cfg.scale + 30.0);
            k.run_until_apps_done(limit);
            Some(app)
        }
        "fig5" => {
            // The suite entry behind Figure 5's headline outlier: apache —
            // the workload whose "1 preemption per request" the preemption
            // attribution below validates.
            let suite = workloads::suite();
            let entry = suite
                .iter()
                .find(|e| e.name == "Apache")
                .ok_or("suite has no Apache entry")?;
            let p = P::scaled(topo.nr_cpus(), cfg.scale);
            let spec = (entry.build)(&mut k, &p);
            let app = k.queue_app(Time::ZERO, spec);
            let limit = Time::ZERO + Dur::secs_f64(600.0 * cfg.scale.max(0.05) + 120.0);
            k.run_until_apps_done(limit);
            Some(app)
        }
        "fig6" => {
            // Figure 6's rebalancing pulse: pinned spinners unpinned at
            // t = 14.5 s (scaled); the interesting window is the unpin.
            let ncpu = topo.nr_cpus();
            let nthreads = ((512.0 * cfg.scale).round() as usize).max(2 * ncpu);
            let app = k.queue_app(Time::ZERO, workloads::synthetic::pinned_spinners(nthreads));
            let unpin_at = Time::ZERO + Dur::secs_f64(14.5 * cfg.scale.max(0.05));
            k.queue_unpin(unpin_at, app);
            let horizon = unpin_at + Dur::secs_f64((30.0 * cfg.scale).max(2.0));
            k.run_until(horizon);
            None
        }
        "fig7" => {
            // Figure 7's c-ray wakeup cascade (thread count scales here —
            // unlike the figure driver — so small-scale traces stay small).
            let threads = ((512.0 * cfg.scale).round() as usize).clamp(32, 512);
            let spec = cray(
                &mut k,
                CrayCfg {
                    threads,
                    work: Dur::secs_f64(6.0 * cfg.scale.clamp(0.05, 1.0)),
                    ..Default::default()
                },
            );
            let app = k.queue_app(Time::ZERO, spec);
            k.run_until_apps_done(Time::ZERO + Dur::secs(220));
            Some(app)
        }
        other => {
            return Err(format!(
                "no trace scenario for {other} (have: {})",
                FIGS.join(" ")
            ))
        }
    };
    let ops = ops_app.map(|a| k.app(a).ops).unwrap_or(0);
    Ok((k, ops))
}

// ---------------------------------------------------------------------
// The export pipeline
// ---------------------------------------------------------------------

/// One scheduler's share of a trace export.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeReport {
    /// Scheduler used.
    pub sched: Sched,
    /// End-of-run observability snapshot (counters + latency summaries).
    pub obs: SchedObs,
    /// Trace-derived analyses.
    pub analysis: TraceAnalysis,
    /// Ops completed by the scenario's application of interest.
    pub ops: u64,
    /// Wakeup-driven preemptions per op — the paper's Fig. 5 apache
    /// discussion ("CFS preempts ab once per request"); `None` when the
    /// scenario has no op notion.
    pub preemptions_per_op: Option<f64>,
    /// Task slices exported for this scheduler's group.
    pub slices: u64,
    /// Events the flight recorder dropped (buffered mode only; 0 when
    /// streaming — the reason `--stream` exists).
    pub trace_dropped: u64,
}

/// A full `battle trace` run: the JSON artifact's whereabouts plus one
/// [`ScopeReport`] per scheduler.
#[derive(Debug, serde::Serialize)]
pub struct ScopeRun {
    /// Figure traced.
    pub fig: String,
    /// Output path of the Chrome-trace JSON.
    pub out: String,
    /// Whether events streamed to disk (vs. buffered flight recorder).
    pub streamed: bool,
    /// Total Chrome-trace events written (all groups, incl. metadata).
    pub events_written: u64,
    /// Per-scheduler reports, in run order.
    pub reports: Vec<ScopeReport>,
}

/// Run `fig` under each of `scheds` and export one combined Chrome-trace
/// file to `out` (one trace "process" per scheduler, so both runs land on
/// a shared timeline in Perfetto).
pub fn run_trace(
    fig: &str,
    scheds: &[Sched],
    cfg: &RunCfg,
    out: &std::path::Path,
    stream: bool,
) -> Result<ScopeRun, String> {
    let topo = topology_of(fig)?;
    let ncpu = topo.nr_cpus();
    let file =
        std::fs::File::create(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let writer = Rc::new(RefCell::new(ChromeTrace::new(std::io::BufWriter::new(
        file,
    ))));
    let mut reports = Vec::new();
    for (i, &sched) in scheds.iter().enumerate() {
        let analyzer = Rc::new(RefCell::new(Analyzer::default()));
        writer
            .borrow_mut()
            .begin_group(i as u32 + 1, sched.name(), ncpu);
        let slices_before = writer.borrow().slices();
        let (mut k, ops) = if stream {
            let sink = ScopeSink {
                trace: Rc::clone(&writer),
                analyzer: Rc::clone(&analyzer),
            };
            run_scenario(fig, sched, cfg, Some(Box::new(sink)), 0)?
        } else {
            run_scenario(fig, sched, cfg, None, BUFFERED_CAPACITY)?
        };
        let trace_dropped = if stream {
            // Drop the kernel's sink box so the writer Rc is released.
            k.take_trace_sink();
            0
        } else {
            let mut w = writer.borrow_mut();
            let mut a = analyzer.borrow_mut();
            for ev in k.trace().iter() {
                w.event(ev, k.tasks());
                a.event(ev, k.tasks());
            }
            k.trace().dropped()
        };
        writer.borrow_mut().end_group(k.now());
        let obs = obs_of(&k);
        let analysis = analyzer.borrow().analysis();
        let wakeup_preempts = obs.counters.wakeup_preemptions;
        reports.push(ScopeReport {
            sched,
            obs,
            analysis,
            ops,
            preemptions_per_op: (ops > 0).then(|| wakeup_preempts as f64 / ops as f64),
            slices: writer.borrow().slices() - slices_before,
            trace_dropped,
        });
    }
    let writer = Rc::try_unwrap(writer)
        .map_err(|_| "trace writer still shared".to_string())?
        .into_inner();
    let events_written = writer.finish()?;
    Ok(ScopeRun {
        fig: fig.to_string(),
        out: out.display().to_string(),
        streamed: stream,
        events_written,
        reports,
    })
}

/// Render a [`ScopeRun`] for the terminal.
pub fn report(run: &ScopeRun) -> String {
    let mut s = format!(
        "SchedScope — {} trace → {} ({} events{})\n",
        run.fig,
        run.out,
        run.events_written,
        if run.streamed { ", streamed" } else { "" }
    );
    s.push_str("open in https://ui.perfetto.dev (or chrome://tracing)\n\n");
    let mut t = metrics::Table::new(&[
        "sched",
        "slices",
        "ctx sw",
        "wakeups",
        "preempt",
        "wake-pre",
        "migrations",
        "run-delay p50/p99/max ms",
        "wakeup-lat p50/p99/max ms",
    ]);
    for r in &run.reports {
        let c = &r.obs.counters;
        t.push(&[
            r.sched.name().to_string(),
            format!("{}", r.slices),
            format!("{}", c.ctx_switches),
            format!("{}", c.wakeups),
            format!("{}", c.preemptions),
            format!("{}", c.wakeup_preemptions),
            format!("{}", c.migrations),
            format!(
                "{:.3}/{:.3}/{:.1}",
                r.obs.run_delay.p50_ms, r.obs.run_delay.p99_ms, r.obs.run_delay.max_ms
            ),
            format!(
                "{:.3}/{:.3}/{:.1}",
                r.obs.wakeup_latency.p50_ms,
                r.obs.wakeup_latency.p99_ms,
                r.obs.wakeup_latency.max_ms
            ),
        ]);
    }
    s.push_str(&t.render());
    for r in &run.reports {
        s.push_str(&format!("\n[{}] preemptions by cause: ", r.sched.name()));
        if r.analysis.preemptions.is_empty() {
            s.push_str("none");
        } else {
            let parts: Vec<String> = r
                .analysis
                .preemptions
                .iter()
                .map(|c| format!("{} {}", c.cause, c.count))
                .collect();
            s.push_str(&parts.join(", "));
        }
        if let Some(ppo) = r.preemptions_per_op {
            s.push_str(&format!(
                "\n[{}] wakeup preemptions per op: {ppo:.2} over {} ops",
                r.sched.name(),
                r.ops
            ));
        }
        if !r.analysis.preempt_pairs.is_empty() {
            s.push_str(&format!("\n[{}] heaviest preemptors: ", r.sched.name()));
            let parts: Vec<String> = r
                .analysis
                .preempt_pairs
                .iter()
                .take(4)
                .map(|p| format!("{}→{} ×{}", p.by, p.victim, p.count))
                .collect();
            s.push_str(&parts.join(", "));
        }
        if r.trace_dropped > 0 {
            s.push_str(&format!(
                "\n[{}] WARNING: flight recorder dropped {} events — re-run with --stream",
                r.sched.name(),
                r.trace_dropped
            ));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_strips_worker_suffixes() {
        assert_eq!(comm("ab-17"), "ab");
        assert_eq!(comm("worker3"), "worker");
        assert_eq!(comm("fibo"), "fibo");
        assert_eq!(comm("42"), "42", "all-digit names stay intact");
    }

    #[test]
    fn us_formats_fixed_point_micros() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_007), "1000.007");
    }

    #[test]
    fn esc_escapes_quotes_and_controls() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\u000ay");
    }

    #[test]
    fn unknown_fig_is_an_error() {
        assert!(topology_of("fig9").is_err());
        let r = run_trace(
            "nope",
            &[Sched::Cfs],
            &RunCfg::at_scale(0.02),
            std::path::Path::new("/tmp/schedscope-unknown.json"),
            false,
        );
        assert!(r.is_err());
    }
}
