//! Figure 1 (and the data behind Figure 2 / Table 2): fibo + sysbench on a
//! single core.
//!
//! "Fibo runs alone for 7 seconds, and then sysbench is launched. Both
//! applications then run to completion." On CFS both share the core
//! (cgroup fairness gives each application ~50%); on ULE the 80 sysbench
//! workers are classified interactive and fibo starves until sysbench
//! completes (§5.1).

use metrics::TimeSeries;
use simcore::{Dur, Time};
use workloads::{synthetic, sysbench::SysbenchCfg};

use crate::{make_kernel, RunCfg, Sched};

/// One scheduler's run of the experiment.
#[derive(Debug, serde::Serialize)]
pub struct Fig1Run {
    /// Scheduler used.
    pub sched: Sched,
    /// Cumulative CPU runtime of fibo (seconds), sampled once per second.
    pub fibo_runtime: TimeSeries,
    /// Cumulative CPU runtime summed over sysbench's threads.
    pub sysbench_runtime: TimeSeries,
    /// ULE interactivity penalty of fibo over time (empty under CFS).
    pub fibo_penalty: TimeSeries,
    /// Mean ULE penalty of sysbench workers over time (empty under CFS).
    pub sysbench_penalty: TimeSeries,
    /// When sysbench completed (seconds), if it did.
    pub sysbench_done_s: Option<f64>,
    /// When fibo completed (seconds), if it did.
    pub fibo_done_s: Option<f64>,
    /// Sysbench transactions per second (Table 2).
    pub sysbench_tx_per_s: f64,
    /// Sysbench mean transaction latency in ms (Table 2).
    pub sysbench_avg_latency_ms: f64,
    /// Total CPU time consumed by fibo (Table 2's "Runtime").
    pub fibo_runtime_total_s: f64,
    /// End-of-run observability snapshot (SchedScope).
    pub obs: Option<crate::SchedObs>,
}

/// Run the experiment under one scheduler.
pub fn run(sched: Sched, cfg: &RunCfg) -> Fig1Run {
    let topo = topology::Topology::single_core();
    let mut k = make_kernel(&topo, sched, cfg.seed);

    let fibo_work = Dur::secs_f64(160.0 * cfg.scale);
    let fibo = k.queue_app(Time::ZERO, synthetic::fibo(fibo_work));

    let sb_start = Time::ZERO + Dur::secs_f64(7.0 * cfg.scale);
    let sb_cfg = SysbenchCfg {
        threads: 80,
        total_tx: ((260_000.0 * cfg.scale).round() as u64).max(500),
        ..Default::default()
    };
    let spec = workloads::sysbench::sysbench(&mut k, sb_cfg);
    let sysbench = k.queue_app(sb_start, spec);

    let mut out = Fig1Run {
        sched,
        fibo_runtime: TimeSeries::new("fibo"),
        sysbench_runtime: TimeSeries::new("sysbench"),
        fibo_penalty: TimeSeries::new("fibo penalty"),
        sysbench_penalty: TimeSeries::new("sysbench penalty"),
        sysbench_done_s: None,
        fibo_done_s: None,
        sysbench_tx_per_s: 0.0,
        sysbench_avg_latency_ms: 0.0,
        fibo_runtime_total_s: 0.0,
        obs: None,
    };

    let step = Dur::secs_f64((1.0 * cfg.scale).max(0.05));
    let limit = Time::ZERO + Dur::secs_f64(420.0 * cfg.scale + 30.0);
    let fibo_tid = {
        k.run_until(Time::ZERO); // start apps at t=0
        k.app_tasks(fibo)[0]
    };
    while k.now() < limit && !k.all_apps_done() {
        let next = k.now() + step;
        k.run_until(next);
        out.fibo_runtime
            .push(k.now(), k.task_runtime(fibo_tid).as_secs_f64());
        let sb_tasks = k.app_tasks(sysbench);
        let sb_rt: f64 = sb_tasks
            .iter()
            .map(|&t| k.task_runtime(t).as_secs_f64())
            .sum();
        out.sysbench_runtime.push(k.now(), sb_rt);
        if sched == Sched::Ule {
            if let Some(p) = k.snapshot(fibo_tid).ule_penalty {
                out.fibo_penalty.push(k.now(), p as f64);
            }
            // Mean penalty over the (live) worker threads.
            let (mut sum, mut n) = (0.0, 0u32);
            for &t in sb_tasks.iter().skip(1) {
                if let Some(p) = k.snapshot(t).ule_penalty {
                    sum += p as f64;
                    n += 1;
                }
            }
            if n > 0 {
                out.sysbench_penalty.push(k.now(), sum / n as f64);
            }
        }
    }
    out.sysbench_done_s = k.app(sysbench).elapsed().map(|d| d.as_secs_f64());
    out.fibo_done_s = k.app(fibo).finished.map(|t| t.as_secs_f64());
    out.sysbench_tx_per_s = k.app(sysbench).ops_per_sec(k.now());
    out.sysbench_avg_latency_ms = k
        .app(sysbench)
        .avg_latency()
        .map(|d| d.as_secs_f64() * 1e3)
        .unwrap_or(0.0);
    out.fibo_runtime_total_s = k.task_runtime(fibo_tid).as_secs_f64();
    out.obs = Some(crate::obs_of(&k));
    out
}

/// The full figure: both schedulers.
#[derive(Debug, serde::Serialize)]
pub struct Fig1 {
    /// CFS run (Figure 1a).
    pub cfs: Fig1Run,
    /// ULE run (Figure 1b).
    pub ule: Fig1Run,
}

/// Run both schedulers (in parallel when the runner pool allows).
pub fn run_both(cfg: &RunCfg) -> Fig1 {
    let (cfs, ule) = crate::runner::join(|| run(Sched::Cfs, cfg), || run(Sched::Ule, cfg));
    Fig1 { cfs, ule }
}

/// Render the two panels as ASCII charts.
pub fn report(fig: &Fig1) -> String {
    let mut s = String::new();
    s.push_str("Figure 1(a) — cumulative runtime on CFS\n");
    s.push_str(&TimeSeries::ascii_chart(
        &[&fig.cfs.fibo_runtime, &fig.cfs.sysbench_runtime],
        72,
        14,
    ));
    s.push_str("\nFigure 1(b) — cumulative runtime on ULE\n");
    s.push_str(&TimeSeries::ascii_chart(
        &[&fig.ule.fibo_runtime, &fig.ule.sysbench_runtime],
        72,
        14,
    ));
    s.push_str(&format!(
        "\nsysbench completion: CFS {:?}s vs ULE {:?}s (paper: 235s vs 143s)\n",
        fig.cfs.sysbench_done_s.map(|v| v.round()),
        fig.ule.sysbench_done_s.map(|v| v.round()),
    ));
    s
}

/// Check the paper's qualitative claims; returns human-readable failures.
pub fn validate(fig: &Fig1) -> Vec<String> {
    let mut bad = Vec::new();
    // (1) Under ULE, fibo is starved while sysbench runs: its runtime
    // barely progresses between sysbench's start and completion.
    if let Some(done) = fig.ule.sysbench_done_s {
        let before = fig
            .ule
            .fibo_runtime
            .points
            .iter()
            .find(|&&(t, _)| t >= 0.05 * done)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let at_done = fig
            .ule
            .fibo_runtime
            .points
            .iter()
            .take_while(|&&(t, _)| t <= done)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let span = 0.9 * done;
        if (at_done - before) > 0.15 * span {
            bad.push(format!(
                "ULE: fibo not starved (gained {:.1}s over {:.1}s)",
                at_done - before,
                span
            ));
        }
    } else {
        bad.push("ULE: sysbench never completed".into());
    }
    // (2) Under CFS, fibo keeps progressing while sysbench runs.
    if let Some(done) = fig.cfs.sysbench_done_s {
        let at_done = fig
            .cfs
            .fibo_runtime
            .points
            .iter()
            .take_while(|&&(t, _)| t <= done)
            .last()
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        if at_done < 0.25 * done {
            bad.push(format!(
                "CFS: fibo starved ({at_done:.1}s runtime in {done:.1}s)"
            ));
        }
    } else {
        bad.push("CFS: sysbench never completed".into());
    }
    // (3) Sysbench is roughly twice as fast on ULE.
    let (c, u) = (fig.cfs.sysbench_tx_per_s, fig.ule.sysbench_tx_per_s);
    if !(u > 1.3 * c) {
        bad.push(format!("sysbench tx/s: ULE {u:.0} not >> CFS {c:.0}"));
    }
    // (4) Latency is much lower on ULE.
    if !(fig.ule.sysbench_avg_latency_ms < 0.7 * fig.cfs.sysbench_avg_latency_ms) {
        bad.push(format!(
            "latency: ULE {:.0}ms not << CFS {:.0}ms",
            fig.ule.sysbench_avg_latency_ms, fig.cfs.sysbench_avg_latency_ms
        ));
    }
    bad
}
