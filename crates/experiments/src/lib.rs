//! Experiment drivers: one module per table/figure of the paper.
//!
//! | Module     | Reproduces |
//! |------------|------------|
//! | [`table1`] | Table 1 — the scheduling-class API mapping |
//! | [`fig1`]   | Figure 1 — fibo + sysbench cumulative runtime, CFS vs ULE |
//! | [`fig2`]   | Figure 2 — interactivity penalties over time |
//! | [`table2`] | Table 2 — fibo runtime, sysbench tx/s and latency |
//! | [`fig34`]  | Figures 3 & 4 — single-app starvation inside sysbench |
//! | [`fig5`]   | Figure 5 — 37-application suite on a single core |
//! | [`fig6`]   | Figure 6 — rebalancing 512 unpinned spinners |
//! | [`fig7`]   | Figure 7 — c-ray thread placement and wakeup cascade |
//! | [`fig8`]   | Figure 8 — the suite on the 32-core machine |
//! | [`fig9`]   | Figure 9 — multi-application workloads |
//! | [`ablations`] | design-choice ablations (cgroups, balancer bug, NUMA tolerance, wakeup preemption) |
//!
//! All drivers are deterministic given a seed and accept a `scale`
//! parameter that shrinks work volumes (tests and benches use small
//! scales; the `battle` CLI defaults to the paper-sized runs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > y)` in shape checks is deliberate: it reads as "the claim failed"
// and handles NaN conservatively (a NaN measurement must flag the check).
#![allow(clippy::neg_cmp_op_on_partial_ord)]
// Param structs are built by tweaking a Default; that is their API.
#![allow(clippy::field_reassign_with_default)]

pub mod ablations;
pub mod bench;
pub mod chaos;
pub mod crash;
pub mod desktop;
pub mod fig1;
pub mod fig2;
pub mod fig34;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fuzz;
pub mod golden;
pub mod runner;
pub mod scenarios;
pub mod scope;
pub mod table1;
pub mod table2;
pub mod tournament;
pub mod tune;

use std::sync::atomic::{AtomicBool, Ordering};

use kernel::{AppId, AppSpec, CheckMode, FaultPlan, Kernel};
use simcore::{Dur, Time};
use topology::Topology;
use workloads::{Entry, Metric, P};

pub use scenario::Sched;

/// Global SchedSan switch (the `battle --check strict` flag). Like the
/// worker-pool size in [`runner`], it is process-global so every driver's
/// kernels pick it up without threading a parameter through each figure.
static CHECK_STRICT: AtomicBool = AtomicBool::new(false);

/// Turn strict invariant checking on/off for every kernel built by
/// [`make_kernel`] from now on.
pub fn set_check_mode(mode: CheckMode) {
    CHECK_STRICT.store(mode == CheckMode::Strict, Ordering::Relaxed);
}

/// The SchedSan mode currently in effect.
pub fn check_mode() -> CheckMode {
    if CHECK_STRICT.load(Ordering::Relaxed) {
        CheckMode::Strict
    } else {
        CheckMode::Off
    }
}

/// Common run configuration.
#[derive(Debug, Clone)]
pub struct RunCfg {
    /// Work-volume scale (1.0 = paper-sized).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RunCfg {
    fn default() -> Self {
        RunCfg {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl RunCfg {
    /// Config with the default seed at the given scale.
    pub fn at_scale(scale: f64) -> RunCfg {
        RunCfg {
            scale,
            ..Default::default()
        }
    }
}

/// Build a kernel for `topo` driven by `sched`, honouring the global
/// check mode. Delegates to [`scenario::make_kernel`] (the one kernel
/// factory both the figure drivers and the scenario engine share).
pub fn make_kernel(topo: &Topology, sched: Sched, seed: u64) -> Kernel {
    scenario::make_kernel(topo, sched, seed, check_mode(), FaultPlan::default())
}

/// Structured observability snapshot of one finished kernel run
/// (SchedScope): the counters plus the dispatch-latency distributions the
/// kernel's hot path records. Attached to every figure's JSON dump so
/// regressions in scheduling latency are visible without re-running.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SchedObs {
    /// Kernel activity counters at the end of the run.
    pub counters: kernel::Counters,
    /// Runnable→running dispatch delay over *all* dispatches.
    pub run_delay: metrics::LatencySummary,
    /// Wakeup→dispatch latency (waits that started at a wakeup, the
    /// paper's scheduling-latency notion).
    pub wakeup_latency: metrics::LatencySummary,
    /// Decision digest at the end of the run (what the golden-digest
    /// regression gate pins).
    pub digest: u64,
    /// `true` if the run was aborted by supervision (budget, watchdog or
    /// cancellation) and these numbers are a salvaged partial snapshot.
    pub partial: bool,
}

/// Capture a [`SchedObs`] from a kernel at the end of a run.
pub fn obs_of(k: &Kernel) -> SchedObs {
    SchedObs {
        counters: k.counters().clone(),
        run_delay: k.run_delay().summary(),
        wakeup_latency: k.wakeup_latency().summary(),
        digest: k.decision_digest(),
        partial: false,
    }
}

/// Capture a [`SchedObs`] from a kernel whose run was aborted by
/// supervision: same counters/histograms/digest-so-far, marked partial.
pub fn obs_of_partial(k: &Kernel) -> SchedObs {
    SchedObs {
        partial: true,
        ..obs_of(k)
    }
}

/// Result of running one suite entry under one scheduler.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PerfResult {
    /// Application name.
    pub name: String,
    /// Scheduler used.
    pub sched: Sched,
    /// Wall-clock completion time (seconds); `None` if the limit was hit.
    pub elapsed_s: Option<f64>,
    /// Operations completed.
    pub ops: u64,
    /// The §5.3 performance number: ops/s for database & NAS workloads,
    /// 1/time for everything else.
    pub perf: f64,
    /// End-of-run observability snapshot (SchedScope).
    pub obs: SchedObs,
}

/// Run one suite entry to completion under `sched` and measure it.
///
/// `with_noise` adds the per-core kernel-noise daemon (used by the
/// multicore experiments; see `workloads::noise`).
pub fn run_entry(
    entry: &Entry,
    sched: Sched,
    topo: &Topology,
    cfg: &RunCfg,
    with_noise: bool,
) -> PerfResult {
    match try_run_entry(entry, sched, topo, cfg, with_noise) {
        Ok(r) => r,
        Err(c) => c.bail(),
    }
}

/// Like [`run_entry`], but an invariant violation (strict mode) comes back
/// as a [`crash::Crash`] instead of aborting the process.
pub fn try_run_entry(
    entry: &Entry,
    sched: Sched,
    topo: &Topology,
    cfg: &RunCfg,
    with_noise: bool,
) -> Result<PerfResult, crash::Crash> {
    let mut k = make_kernel(topo, sched, cfg.seed);
    let p = P::scaled(topo.nr_cpus(), cfg.scale);
    let mut start = Time::ZERO;
    if with_noise {
        let noise = workloads::noise::kernel_noise(&mut k, &p);
        k.queue_app(Time::ZERO, noise);
        // Let the background kthreads run before the workload starts, as
        // on a live machine: their load residue is what perturbs CFS's
        // placement (§6.3).
        start = Time::ZERO + Dur::secs(1);
    }
    let spec = (entry.build)(&mut k, &p);
    let app = k.queue_app(start, spec);
    // A generous limit: suite apps are sized for tens of simulated seconds
    // at scale 1.
    let limit = Time::ZERO + Dur::secs_f64(600.0 * cfg.scale.max(0.05) + 120.0);
    let done = k.try_run_until_apps_done(limit).map_err(|e| {
        let label = format!("{}-{}", entry.name, sched.name());
        let replay = format!(
            "battle <experiment> --seed {} --scale {} --check strict",
            cfg.seed, cfg.scale
        );
        crash::Crash::capture(&k, &e, &label, &replay)
    })?;
    Ok(perf_of(entry, &k, app, done))
}

/// Compute the §5.3 performance number for a finished (or timed-out) app.
pub fn perf_of(entry: &Entry, k: &Kernel, app: AppId, done: bool) -> PerfResult {
    let a = k.app(app);
    let elapsed = a.elapsed().map(|d| d.as_secs_f64());
    let perf = match entry.metric {
        Metric::Ops => a.ops_per_sec(k.now()),
        Metric::InvTime => match elapsed {
            Some(e) if e > 0.0 => 1.0 / e,
            _ => 0.0,
        },
    };
    PerfResult {
        name: entry.name.to_string(),
        sched: k_sched(k),
        elapsed_s: if done { elapsed } else { None },
        ops: a.ops,
        perf,
        obs: obs_of(k),
    }
}

fn k_sched(k: &Kernel) -> Sched {
    Sched::parse_flag(k.sched_name())
        .unwrap_or_else(|| panic!("unknown scheduler {}", k.sched_name()))
}

/// Percentage difference of ULE relative to CFS, the y-axis of Figures 5
/// and 8: "> 0 means the application runs faster with ULE than CFS".
pub fn pct_diff(ule: f64, cfs: f64) -> f64 {
    if cfs == 0.0 {
        0.0
    } else {
        (ule - cfs) / cfs * 100.0
    }
}

/// Helper: queue an [`AppSpec`] built by a closure needing the kernel.
pub fn queue_built(k: &mut Kernel, at: Time, build: impl FnOnce(&mut Kernel) -> AppSpec) -> AppId {
    let spec = build(k);
    k.queue_app(at, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_diff_signs() {
        assert!((pct_diff(2.0, 1.0) - 100.0).abs() < 1e-12);
        assert!((pct_diff(0.5, 1.0) + 50.0).abs() < 1e-12);
        assert_eq!(pct_diff(1.0, 0.0), 0.0);
    }

    #[test]
    fn make_kernel_both_scheds() {
        let topo = Topology::single_core();
        assert_eq!(make_kernel(&topo, Sched::Cfs, 1).sched_name(), "cfs");
        assert_eq!(make_kernel(&topo, Sched::Ule, 1).sched_name(), "ule");
    }
}
