//! Figure 7: thread placement in c-ray (§6.2).
//!
//! "Load is always balanced in ULE, but surprisingly it takes more than 11
//! seconds for ULE to have all threads runnable, while it only takes 2
//! seconds for CFS. This delay is explained by starvation (...) threads
//! that were initially categorized as batch cannot wake up other threads."

use metrics::PerCoreSeries;
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use workloads::phoronix::{cray, CrayCfg};

use crate::{make_kernel, RunCfg, Sched};

/// One scheduler's run.
#[derive(Debug, serde::Serialize)]
pub struct Fig7Run {
    /// Scheduler used.
    pub sched: Sched,
    /// Runnable threads per core over time.
    pub matrix: PerCoreSeries,
    /// Seconds from app start until every renderer thread had been woken
    /// by the cascade (i.e. all threads runnable at least once).
    pub all_runnable_s: Option<f64>,
    /// Completion time of the app (seconds).
    pub completion_s: Option<f64>,
    /// End-of-run observability snapshot (SchedScope).
    pub obs: crate::SchedObs,
}

/// Run under one scheduler.
pub fn run(sched: Sched, cfg: &RunCfg) -> Fig7Run {
    let topo = Topology::opteron_6172();
    let ncpu = topo.nr_cpus();
    let mut k = make_kernel(&topo, sched, cfg.seed);
    // The interactive/batch split depends on the absolute CPU time the
    // master burns while forking, so the thread count stays at the paper's
    // 512; `scale` shrinks only the per-thread render work.
    let threads = 512;
    let spec = cray(
        &mut k,
        CrayCfg {
            threads,
            work: Dur::secs_f64(6.0 * cfg.scale.clamp(0.3, 1.0)),
            ..Default::default()
        },
    );
    let app = k.queue_app(Time::ZERO, spec);

    let mut matrix = PerCoreSeries::new();
    let step = Dur::millis(250);
    let limit = Time::ZERO + Dur::secs(220);
    let mut all_runnable_s = None;
    while k.now() < limit && !k.all_apps_done() {
        let next = k.now() + step;
        k.run_until(next);
        let row: Vec<u32> = (0..ncpu as u32)
            .map(|c| k.nr_queued(CpuId(c)) as u32)
            .collect();
        matrix.push(k.now(), row);
        if all_runnable_s.is_none() {
            // A renderer has been woken by the cascade iff it is runnable,
            // running, or already exited. (Sleeping threads have only run
            // their startup code and still wait at the cascade barrier.)
            let woken = k
                .app_tasks(app)
                .iter()
                .skip(1) // master
                .filter(|&&t| {
                    let task = k.task(t);
                    task.is_active() || task.state == sched_api::TaskState::Dead
                })
                .count();
            if k.app(app).spawned >= threads && woken >= threads {
                all_runnable_s = Some(k.now().as_secs_f64());
            }
        }
    }
    Fig7Run {
        sched,
        matrix,
        all_runnable_s,
        completion_s: k.app(app).elapsed().map(|d| d.as_secs_f64()),
        obs: crate::obs_of(&k),
    }
}

/// The full figure.
#[derive(Debug, serde::Serialize)]
pub struct Fig7 {
    /// ULE panel (a).
    pub ule: Fig7Run,
    /// CFS panel (b).
    pub cfs: Fig7Run,
}

/// Run both schedulers (in parallel when the runner pool allows).
pub fn run_both(cfg: &RunCfg) -> Fig7 {
    let (ule, cfs) = crate::runner::join(|| run(Sched::Ule, cfg), || run(Sched::Cfs, cfg));
    Fig7 { ule, cfs }
}

/// Render both heatmaps and the headline numbers.
pub fn report(fig: &Fig7) -> String {
    let mut s = String::from("Figure 7(a) — c-ray threads per core (ULE)\n");
    s.push_str(&fig.ule.matrix.heatmap());
    s.push_str("\nFigure 7(b) — c-ray threads per core (CFS)\n");
    s.push_str(&fig.cfs.matrix.heatmap());
    s.push_str(&format!(
        "\ntime until all threads woken: ULE {:?}s vs CFS {:?}s (paper: ~11s vs ~2s)\n",
        fig.ule.all_runnable_s, fig.cfs.all_runnable_s
    ));
    s.push_str(&format!(
        "completion: ULE {:?}s vs CFS {:?}s (paper: same)\n",
        fig.ule.completion_s, fig.cfs.completion_s
    ));
    s
}

/// Qualitative checks from §6.2.
pub fn validate(fig: &Fig7) -> Vec<String> {
    let mut bad = Vec::new();
    match (fig.ule.all_runnable_s, fig.cfs.all_runnable_s) {
        (Some(u), Some(c)) => {
            // Paper: ~11s vs ~2s. The simulated separation is smaller but
            // must clearly show ULE's starvation delay.
            if !(u > 1.4 * c) {
                bad.push(format!(
                    "ULE's cascade should be much slower (starvation): ULE {u:.1}s vs CFS {c:.1}s"
                ));
            }
        }
        _ => bad.push(format!(
            "cascade never completed: ULE {:?} CFS {:?}",
            fig.ule.all_runnable_s, fig.cfs.all_runnable_s
        )),
    }
    // Despite the difference, completion times are similar (both keep all
    // cores busy; there are more threads than cores).
    if let (Some(u), Some(c)) = (fig.ule.completion_s, fig.cfs.completion_s) {
        let ratio = u / c;
        if !(0.7..=1.4).contains(&ratio) {
            bad.push(format!(
                "completion should be similar: ULE {u:.1}s vs CFS {c:.1}s"
            ));
        }
    }
    bad
}
