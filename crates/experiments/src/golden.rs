//! `battle golden` — the golden-digest regression gate.
//!
//! A manifest of small-scale figure and scenario runs, each pinned at a
//! fixed scale and seed. `battle golden --write` records every run's
//! decision digest under `results/golden/<name>.digest`; plain
//! `battle golden` re-runs the manifest and diffs against the committed
//! files, printing a side-by-side divergence report. Any change to
//! scheduler decision-making — intended or not — shows up here before it
//! shows up in a figure.

use simcore::Fnv1a;

use scenario::{EngineOpts, Sched};

use crate::{fig1, fig5, fig6, fig7, runner, RunCfg};

/// What a manifest entry runs.
#[derive(Debug, Clone)]
pub enum Job {
    /// A hardcoded figure driver.
    Fig(&'static str),
    /// A scenario file, relative to the repo root.
    Scenario(&'static str),
}

/// One pinned digest target.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Golden-file stem (`results/golden/<name>.digest`).
    pub name: &'static str,
    /// What to run.
    pub job: Job,
    /// Pinned scale.
    pub scale: f64,
}

/// Pinned seed for every golden run.
pub const SEED: u64 = 42;

/// The manifest: every digest the CI gate pins.
pub fn manifest() -> Vec<Entry> {
    vec![
        Entry {
            name: "fig1",
            job: Job::Fig("fig1"),
            scale: 0.05,
        },
        Entry {
            name: "fig5",
            job: Job::Fig("fig5"),
            scale: 0.02,
        },
        Entry {
            name: "fig6",
            job: Job::Fig("fig6"),
            scale: 0.02,
        },
        Entry {
            name: "fig7",
            job: Job::Fig("fig7"),
            scale: 0.05,
        },
        Entry {
            name: "sc-fig1",
            job: Job::Scenario("scenarios/fig1.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-fig6",
            job: Job::Scenario("scenarios/fig6.toml"),
            scale: 0.02,
        },
        Entry {
            name: "sc-fig7",
            job: Job::Scenario("scenarios/fig7.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-numa-imbalance",
            job: Job::Scenario("scenarios/numa-imbalance.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-priority-inversion",
            job: Job::Scenario("scenarios/priority-inversion.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-bursty-server",
            job: Job::Scenario("scenarios/bursty-server.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-thundering-herd",
            job: Job::Scenario("scenarios/thundering-herd.toml"),
            scale: 0.05,
        },
        Entry {
            name: "sc-mixed-nice",
            job: Job::Scenario("scenarios/mixed-nice.toml"),
            scale: 0.05,
        },
    ]
}

/// Digests of one manifest entry, CFS then ULE.
#[derive(Debug, Clone, serde::Serialize)]
pub struct EntryDigests {
    /// Entry name.
    pub name: String,
    /// `(scheduler, digest)` pairs in run order.
    pub digests: Vec<(String, u64)>,
    /// Schedulers whose run was aborted by supervision (budget, watchdog
    /// or cancellation) and produced only a partial digest. A partial
    /// digest must never become a baseline: `--write` refuses it, a check
    /// flags it loudly.
    pub partial: Vec<String>,
    /// Error while computing (scenario parse failure, crash).
    pub error: Option<String>,
}

/// Fold a list of per-row digests into one (order-sensitive), used for
/// fig5 where the digest is per suite entry per scheduler.
fn fold(digests: impl Iterator<Item = u64>) -> u64 {
    let mut h = Fnv1a::new();
    for d in digests {
        h.write_u64(d);
    }
    h.finish()
}

fn compute(entry: &Entry) -> EntryDigests {
    let cfg = RunCfg {
        scale: entry.scale,
        seed: SEED,
    };
    let mut out = EntryDigests {
        name: entry.name.to_string(),
        digests: Vec::new(),
        partial: Vec::new(),
        error: None,
    };
    match &entry.job {
        Job::Fig("fig1") => {
            let fig = fig1::run_both(&cfg);
            let cfs = fig.cfs.obs.as_ref().map(|o| o.digest).unwrap_or(0);
            let ule = fig.ule.obs.as_ref().map(|o| o.digest).unwrap_or(0);
            out.digests.push(("cfs".into(), cfs));
            out.digests.push(("ule".into(), ule));
        }
        Job::Fig("fig5") => {
            let cmp = fig5::run(&cfg);
            out.digests.push((
                "cfs".into(),
                fold(cmp.rows.iter().map(|r| r.cfs.obs.digest)),
            ));
            out.digests.push((
                "ule".into(),
                fold(cmp.rows.iter().map(|r| r.ule.obs.digest)),
            ));
        }
        Job::Fig("fig6") => {
            let fig = fig6::run_both(&cfg);
            out.digests.push(("cfs".into(), fig.cfs.obs.digest));
            out.digests.push(("ule".into(), fig.ule.obs.digest));
        }
        Job::Fig("fig7") => {
            let fig = fig7::run_both(&cfg);
            out.digests.push(("cfs".into(), fig.cfs.obs.digest));
            out.digests.push(("ule".into(), fig.ule.obs.digest));
        }
        Job::Fig(other) => {
            out.error = Some(format!("unknown figure `{other}` in manifest"));
        }
        Job::Scenario(path) => match std::fs::read_to_string(path)
            .map_err(|e| format!("{path}: {e}"))
            .and_then(|src| scenario::Scenario::from_toml(&src).map_err(|e| format!("{path}: {e}")))
        {
            Ok(sc) => {
                let opts = EngineOpts {
                    scale: entry.scale,
                    seed: SEED,
                    ..EngineOpts::default()
                };
                for &sched in &[Sched::Cfs, Sched::Ule, Sched::Eevdf] {
                    let label = sched.flag_name();
                    match scenario::run_sched(&sc, sched, &opts) {
                        Ok(r) => {
                            if r.run.partial {
                                out.partial.push(label.into());
                            }
                            out.digests.push((label.into(), r.run.digest));
                        }
                        Err(e) => {
                            out.error = Some(format!("{path}: {e}"));
                            break;
                        }
                    }
                }
            }
            Err(e) => out.error = Some(e),
        },
    }
    out
}

/// Run the whole manifest (parallel across entries).
pub fn compute_all() -> Vec<EntryDigests> {
    runner::par_map(manifest(), |e| compute(&e))
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from("results")
        .join("golden")
        .join(format!("{name}.digest"))
}

fn render_file(entry: &Entry, d: &EntryDigests) -> String {
    let mut s = format!(
        "# golden decision digests — regenerate with `battle golden --write`\n\
         # name={} scale={} seed={}\n",
        entry.name, entry.scale, SEED
    );
    for (sched, digest) in &d.digests {
        s.push_str(&format!("{sched} {digest:016x}\n"));
    }
    s
}

fn parse_file(src: &str) -> Vec<(String, u64)> {
    src.lines()
        .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let sched = parts.next()?.to_string();
            let digest = u64::from_str_radix(parts.next()?, 16).ok()?;
            Some((sched, digest))
        })
        .collect()
}

/// Write every manifest digest to `results/golden/`. Returns `false` on
/// I/O failure or if any entry errored.
pub fn write_all() -> bool {
    let entries = manifest();
    let digests = compute_all();
    let mut ok = true;
    if let Err(e) = std::fs::create_dir_all(std::path::Path::new("results").join("golden")) {
        eprintln!("cannot create results/golden: {e}");
        return false;
    }
    for (entry, d) in entries.iter().zip(&digests) {
        if let Some(err) = &d.error {
            eprintln!("[{}] ERROR: {err}", d.name);
            ok = false;
            continue;
        }
        if !d.partial.is_empty() {
            // A budget-killed (or otherwise aborted) run's digest-so-far is
            // deterministic but meaningless as a baseline: it pins where
            // the guard fired, not what the scheduler decided. Refuse.
            eprintln!(
                "[{}] REFUSING to write golden: run(s) [{}] were aborted by supervision \
                 and only salvaged a partial digest",
                d.name,
                d.partial.join(", ")
            );
            ok = false;
            continue;
        }
        let path = golden_path(entry.name);
        match std::fs::write(&path, render_file(entry, d)) {
            Ok(()) => println!(
                "wrote {} ({})",
                path.display(),
                d.digests
                    .iter()
                    .map(|(s, v)| format!("{s}={v:016x}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                ok = false;
            }
        }
    }
    ok
}

/// Re-run the manifest and diff against the committed golden files,
/// printing a side-by-side report. Returns `false` on any divergence.
pub fn check_all() -> bool {
    let entries = manifest();
    let digests = compute_all();
    let mut t = metrics::Table::new(&["entry", "sched", "expected", "got", "status"]);
    let mut ok = true;
    for (entry, d) in entries.iter().zip(&digests) {
        if let Some(err) = &d.error {
            t.push(&[
                d.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("ERROR: {err}"),
            ]);
            ok = false;
            continue;
        }
        let path = golden_path(entry.name);
        let expected = match std::fs::read_to_string(&path) {
            Ok(src) => parse_file(&src),
            Err(e) => {
                t.push(&[
                    d.name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("MISSING {} ({e})", path.display()),
                ]);
                ok = false;
                continue;
            }
        };
        for (sched, got) in &d.digests {
            let exp = expected.iter().find(|(s, _)| s == sched).map(|&(_, v)| v);
            if d.partial.iter().any(|p| p == sched) {
                // The recomputed run aborted mid-flight; its digest-so-far
                // is not comparable to a full-run baseline.
                println!(
                    "::warning title=golden partial run::[{}/{sched}] golden run was aborted \
                     by supervision; baseline not comparable",
                    d.name
                );
                t.push(&[
                    d.name.clone(),
                    sched.clone(),
                    exp.map(|v| format!("{v:016x}"))
                        .unwrap_or_else(|| "-".into()),
                    format!("{got:016x}"),
                    "PARTIAL (run aborted — not comparable)".to_string(),
                ]);
                ok = false;
                continue;
            }
            let (exp_s, status) = match exp {
                Some(v) if v == *got => (format!("{v:016x}"), "ok".to_string()),
                Some(v) => {
                    ok = false;
                    (format!("{v:016x}"), "DIVERGED".to_string())
                }
                None => {
                    ok = false;
                    ("-".to_string(), "UNPINNED".to_string())
                }
            };
            t.push(&[
                d.name.clone(),
                sched.clone(),
                exp_s,
                format!("{got:016x}"),
                status,
            ]);
        }
    }
    println!("{}", t.render());
    if ok {
        println!("golden digests: all {} entries match", entries.len());
    } else {
        println!(
            "golden digests DIVERGED — if the change is intended, regenerate with \
             `battle golden --write` and commit results/golden/"
        );
    }
    ok
}
