//! `battle` — regenerate any table or figure of the paper.
//!
//! ```text
//! battle <experiment> [--scale S] [--seed N] [--json PATH]
//!
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 all
//! ```
//!
//! `--scale` shrinks work volumes (default 1.0 = paper-sized runs; use
//! e.g. 0.1 for a quick pass). Results print as ASCII tables/charts and can
//! additionally be dumped as JSON.

use std::io::Write;

use experiments::{
    ablations, desktop, fig1, fig2, fig34, fig5, fig6, fig7, fig8, fig9, table1, table2, RunCfg,
};

struct Args {
    experiment: String,
    cfg: RunCfg,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut cfg = RunCfg::default();
    let mut json = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().ok_or("missing value for --scale")?;
                cfg.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("missing value for --seed")?;
                cfg.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--json" => json = Some(args.next().ok_or("missing value for --json")?),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    Ok(Args {
        experiment,
        cfg,
        json,
    })
}

fn usage() -> String {
    "usage: battle <table1|fig1|fig2|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablations|desktop|all> \
     [--scale S] [--seed N] [--json PATH]"
        .to_string()
}

fn dump_json(path: &Option<String>, value: &impl serde::Serialize) {
    if let Some(p) = path {
        let s = serde_json::to_string_pretty(value).expect("serializable");
        std::fs::write(p, s).unwrap_or_else(|e| eprintln!("cannot write {p}: {e}"));
    }
}

fn print_validation(name: &str, problems: Vec<String>) {
    if problems.is_empty() {
        println!("[{name}] shape checks: OK");
    } else {
        for p in &problems {
            println!("[{name}] shape check FAILED: {p}");
        }
    }
}

fn run_one(name: &str, cfg: &RunCfg, json: &Option<String>) {
    match name {
        "table1" => {
            print!("{}", table1::report());
        }
        "fig1" => {
            let fig = fig1::run_both(cfg);
            print!("{}", fig1::report(&fig));
            print_validation("fig1", fig1::validate(&fig));
            dump_json(json, &fig);
        }
        "fig2" => {
            let ule = fig2::run(cfg);
            print!("{}", fig2::report(&ule));
            print_validation("fig2", fig2::validate(&ule));
            dump_json(json, &ule);
        }
        "table2" => {
            let fig = table2::run(cfg);
            print!("{}", table2::report(&fig));
            dump_json(json, &fig);
        }
        "fig3" | "fig4" | "fig34" => {
            let f = fig34::run(cfg);
            print!("{}", fig34::report(&f));
            print_validation("fig3/4", fig34::validate(&f));
            dump_json(json, &f);
        }
        "fig5" => {
            let cmp = fig5::run(cfg);
            print!("{}", fig5::report(&cmp));
            print_validation("fig5", fig5::validate(&cmp));
            dump_json(json, &cmp);
        }
        "fig6" => {
            let fig = fig6::run_both(cfg);
            print!("{}", fig6::report(&fig));
            let nthreads = ((512.0 * cfg.scale).round() as u32).max(64);
            print_validation("fig6", fig6::validate(&fig, nthreads, 32));
            dump_json(json, &fig);
        }
        "fig7" => {
            let fig = fig7::run_both(cfg);
            print!("{}", fig7::report(&fig));
            print_validation("fig7", fig7::validate(&fig));
            dump_json(json, &fig);
        }
        "fig8" => {
            let cmp = fig8::run(cfg);
            print!("{}", fig8::report(&cmp));
            print_validation("fig8", fig8::validate(&cmp));
            dump_json(json, &cmp);
        }
        "fig9" => {
            let fig = fig9::run(cfg);
            print!("{}", fig9::report(&fig));
            print_validation("fig9", fig9::validate(&fig));
            dump_json(json, &fig);
        }
        "ablations" => {
            let a = ablations::run(cfg);
            print!("{}", ablations::report(&a));
            print_validation("ablations", ablations::validate(&a));
            dump_json(json, &a);
        }
        "desktop" => {
            let d = desktop::run(cfg);
            print!("{}", desktop::report(&d));
            print_validation("desktop", desktop::validate(&d));
            dump_json(json, &d);
        }
        other => {
            eprintln!("unknown experiment {other}\n{}", usage());
            std::process::exit(2);
        }
    }
    std::io::stdout().flush().ok();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if args.experiment == "all" {
        for name in [
            "table1",
            "fig1",
            "fig2",
            "table2",
            "fig34",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ablations",
            "desktop",
        ] {
            println!("════════════════════════ {name} ════════════════════════");
            run_one(
                name,
                &args.cfg,
                &args.json.as_ref().map(|p| format!("{p}.{name}.json")),
            );
            println!();
        }
    } else {
        run_one(&args.experiment, &args.cfg, &args.json);
    }
}
