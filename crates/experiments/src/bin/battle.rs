//! `battle` — regenerate any table or figure of the paper.
//!
//! ```text
//! battle <experiment> [--scale S] [--seed N] [--json PATH] [--threads N]
//!                     [--check strict|off]
//!
//! experiments: table1 fig1 fig2 table2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              ablations desktop bench fuzz all
//! ```
//!
//! `--scale` shrinks work volumes (default 1.0 = paper-sized runs; use
//! e.g. 0.1 for a quick pass). `--threads` sets the simulation worker-pool
//! size (default: all available cores); output is byte-identical whatever
//! the value. `--check strict` turns on SchedSan, the runtime invariant
//! checker: every kernel event is followed by a full consistency audit, and
//! a violation writes a crash bundle under `results/crash/` and exits
//! nonzero. Results print as ASCII tables/charts and can additionally be
//! dumped as JSON. `bench` measures the simulator's own wall-clock
//! throughput and writes `BENCH_sim.json`.
//!
//! `fuzz` runs randomized workload/fault/topology combinations under the
//! selected schedulers with strict checking (see `experiments::fuzz`):
//!
//! ```text
//! battle fuzz [--cases N] [--seed N] [--sched NAME|both|all]
//!             [--faults on|off] [--parts MASK] [--case-seed HEX]
//! ```
//!
//! `tournament` runs every registered scheduler over a scenario corpus and
//! prints a ranked scorecard (see `experiments::tournament`):
//!
//! ```text
//! battle tournament <scenario.toml|dir>... [--scale S] [--seed N]
//!                   [--threads N] [--json PATH]
//! ```
//!
//! `trace` exports a figure scenario's scheduling trace as
//! Chrome-trace/Perfetto JSON (see `experiments::scope`):
//!
//! ```text
//! battle trace <fig1|fig5|fig6|fig7> [--out PATH] [--stream]
//!              [--sched cfs|ule|both] [--scale S] [--seed N] [--json PATH]
//! ```

use std::io::Write;

use experiments::{
    ablations, bench, chaos, desktop, fig1, fig2, fig34, fig5, fig6, fig7, fig8, fig9, fuzz,
    golden, runner, scenarios, scope, table1, table2, RunCfg, Sched,
};
use kernel::CheckMode;

struct Args {
    experiment: String,
    cfg: RunCfg,
    json: Option<String>,
    fuzz: fuzz::FuzzCfg,
    /// `battle trace <fig>`: the figure to trace.
    trace_fig: Option<String>,
    /// `battle trace`: output path of the Chrome-trace JSON.
    out: String,
    /// `battle trace`: stream events to disk instead of buffering.
    stream: bool,
    /// `battle run`: scenario files/directories (positional).
    paths: Vec<String>,
    /// `battle run --trace`: export a Chrome-trace per scenario.
    trace: bool,
    /// `battle golden --write`: record digests instead of checking.
    write: bool,
    /// `battle bench --compare PATH`: baseline JSON for the perf gate.
    compare: Option<String>,
    /// `battle run --timeout SECS`: wall-clock deadline for the batch;
    /// expired runs salvage a partial result and the command fails.
    timeout: Option<f64>,
    /// `battle chaos --plans N`: extra randomized budget plans per pair.
    plans: u32,
    /// `battle tune --budget N`: candidate evaluations per scheduler.
    budget: usize,
    /// `true` once `--sched` was given explicitly (so `tune` can default
    /// to the tunable set instead of fuzz's cfs+ule default).
    sched_given: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut cfg = RunCfg::default();
    let mut json = None;
    let mut fz = fuzz::FuzzCfg::default();
    let mut trace_fig = None;
    let mut out = String::from("trace.json");
    let mut stream = false;
    let mut paths = Vec::new();
    let mut trace = false;
    let mut write = false;
    let mut compare = None;
    let mut timeout = None;
    let mut plans = 1u32;
    let mut budget = 64usize;
    let mut sched_given = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--timeout" => {
                let v = args.next().ok_or("missing value for --timeout")?;
                let s: f64 = v.parse().map_err(|e| format!("bad --timeout: {e}"))?;
                if s.is_nan() || s <= 0.0 {
                    return Err("--timeout must be positive".to_string());
                }
                timeout = Some(s);
            }
            "--case-timeout" => {
                let v = args.next().ok_or("missing value for --case-timeout")?;
                let s: f64 = v.parse().map_err(|e| format!("bad --case-timeout: {e}"))?;
                if s.is_nan() || s <= 0.0 {
                    return Err("--case-timeout must be positive".to_string());
                }
                fz.case_timeout_s = s;
            }
            "--plans" => {
                let v = args.next().ok_or("missing value for --plans")?;
                plans = v.parse().map_err(|e| format!("bad --plans: {e}"))?;
            }
            "--out" => out = args.next().ok_or("missing value for --out")?,
            "--stream" => stream = true,
            "--trace" => trace = true,
            "--write" => write = true,
            "--compare" => compare = Some(args.next().ok_or("missing value for --compare")?),
            "--check" => {
                let v = args.next().ok_or("missing value for --check")?;
                match v.as_str() {
                    "strict" => experiments::set_check_mode(CheckMode::Strict),
                    "off" => experiments::set_check_mode(CheckMode::Off),
                    other => return Err(format!("bad --check: {other} (strict|off)")),
                }
            }
            "--cases" => {
                let v = args.next().ok_or("missing value for --cases")?;
                fz.cases = v.parse().map_err(|e| format!("bad --cases: {e}"))?;
            }
            "--budget" => {
                let v = args.next().ok_or("missing value for --budget")?;
                budget = v.parse().map_err(|e| format!("bad --budget: {e}"))?;
                if budget == 0 {
                    return Err("--budget must be at least 1".to_string());
                }
            }
            "--sched" => {
                let v = args.next().ok_or("missing value for --sched")?;
                sched_given = true;
                fz.scheds = match v.as_str() {
                    "both" => Sched::BOTH.to_vec(),
                    "all" => Sched::ALL.to_vec(),
                    one => match Sched::parse_flag(one) {
                        Some(s) => vec![s],
                        None => {
                            let known: Vec<&str> =
                                Sched::ALL.iter().map(|s| s.flag_name()).collect();
                            return Err(format!(
                                "bad --sched: {one} ({}|both|all)",
                                known.join("|")
                            ));
                        }
                    },
                };
            }
            "--faults" => {
                let v = args.next().ok_or("missing value for --faults")?;
                fz.faults = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("bad --faults: {other} (on|off)")),
                };
            }
            "--parts" => {
                let v = args.next().ok_or("missing value for --parts")?;
                fz.parts = v.parse().map_err(|e| format!("bad --parts: {e}"))?;
            }
            "--case-seed" => {
                let v = args.next().ok_or("missing value for --case-seed")?;
                let hex = v.trim_start_matches("0x");
                fz.case_seed = Some(
                    u64::from_str_radix(hex, 16).map_err(|e| format!("bad --case-seed: {e}"))?,
                );
            }
            "--scale" => {
                let v = args.next().ok_or("missing value for --scale")?;
                cfg.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("missing value for --seed")?;
                cfg.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("missing value for --threads")?;
                let n: usize = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                runner::set_threads(n);
            }
            "--json" => json = Some(args.next().ok_or("missing value for --json")?),
            other if experiment == "trace" && !other.starts_with('-') && trace_fig.is_none() => {
                trace_fig = Some(other.to_string());
            }
            other
                if (experiment == "run"
                    || experiment == "chaos"
                    || experiment == "tournament"
                    || experiment == "tune")
                    && !other.starts_with('-') =>
            {
                paths.push(other.to_string());
            }
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    fz.seed = cfg.seed;
    Ok(Args {
        experiment,
        cfg,
        json,
        fuzz: fz,
        trace_fig,
        out,
        stream,
        paths,
        trace,
        write,
        compare,
        timeout,
        plans,
        budget,
        sched_given,
    })
}

fn usage() -> String {
    "usage: battle <table1|fig1|fig2|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|ablations|desktop|bench|fuzz|trace|run|chaos|tournament|tune|golden|all> \
     [--scale S] [--seed N] [--json PATH] [--threads N] [--check strict|off]\n\
     schedulers:  cfs ule eevdf simple-rr scx-fifo scx-vtime (plus `both` = cfs+ule, `all`)\n\
     fuzz flags: [--cases N] [--sched NAME|both|all] [--faults on|off] [--parts MASK] [--case-seed HEX] [--case-timeout SECS]\n\
     trace usage: battle trace <fig1|fig5|fig6|fig7> [--out PATH] [--stream] [--sched NAME|both]\n\
                  exports a Chrome-trace/Perfetto JSON of the figure's scenario (default out: trace.json)\n\
     run usage:   battle run <scenario.toml|dir>... [--sched NAME|both|all] [--trace] [--json PATH] [--timeout SECS]\n\
                  executes declarative scenario files (see scenarios/ and EXPERIMENTS.md);\n\
                  --timeout cancels overrunning kernels cooperatively and salvages partial results\n\
     tournament:  battle tournament <scenario.toml|dir>... [--scale S] [--seed N] [--json PATH]\n\
                  runs every registered scheduler over the corpus and prints a ranked scorecard\n\
                  (throughput, p99 run-delay, max starvation wait, Jain fairness); deterministic across --threads\n\
     tune usage:  battle tune [scenario.toml|dir]... [--sched NAME|all] [--budget N] [--scale S]\n\
                  [--seed N] [--json PATH] [--write]\n\
                  deterministic parameter search (CEM + coordinate descent) over each scheduler's\n\
                  tunable space; objective = tournament composite vs stock over the corpus (default:\n\
                  scenarios/); --write emits results/tuned/<sched>.toml and table.md; byte-identical\n\
                  output across --threads\n\
     chaos usage: battle chaos <scenario.toml|dir>... [--plans N] [--scale S] [--seed N] [--json PATH]\n\
                  SchedGuard supervision campaign: control vs guarded vs budget-killed runs plus\n\
                  injected panic/livelock/runaway/cancel probes; every case classified, no job loss\n\
     golden:      battle golden [--write] — check (or record) the pinned decision digests\n\
     bench gate:  battle bench --compare BENCH_sim.json — fail on >30 % events/sec regression"
        .to_string()
}

/// Write `value` as pretty JSON to `path` (if set). Returns `false` on an
/// I/O failure so `main` can exit nonzero instead of silently dropping the
/// requested output.
#[must_use]
fn dump_json(path: &Option<String>, value: &impl serde::Serialize) -> bool {
    let Some(p) = path else {
        return true;
    };
    let s = match serde_json::to_string_pretty(value) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot serialize output for {p}: {e}");
            return false;
        }
    };
    match std::fs::write(p, s) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("cannot write {p}: {e}");
            false
        }
    }
}

fn print_validation(name: &str, problems: Vec<String>) {
    if problems.is_empty() {
        println!("[{name}] shape checks: OK");
    } else {
        for p in &problems {
            println!("[{name}] shape check FAILED: {p}");
        }
    }
}

/// `battle bench --compare`: diff a fresh report against the committed
/// baseline. Warn-only within 30 %, hard-fail beyond. The warn prints a
/// GitHub `::warning::` annotation so CI surfaces it without going red.
fn bench_gate(baseline_path: &str, report: &bench::BenchReport) -> bool {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    match bench::compare(&baseline, report, 15.0, 30.0) {
        Ok((rows, verdict)) => {
            println!("\nbench gate vs {baseline_path} (warn >15 %, fail >30 % slower):");
            for r in &rows {
                println!(
                    "  {}: {:.0} -> {:.0} events/s ({:+.1} %)",
                    r.sched, r.baseline, r.current, r.delta_pct
                );
            }
            match verdict {
                bench::Verdict::Ok => {
                    println!("  within tolerance");
                    true
                }
                bench::Verdict::Warn => {
                    println!(
                        "::warning title=bench regression::simulator events/sec dropped >15 % \
                         vs committed baseline (see job log)"
                    );
                    true
                }
                bench::Verdict::Fail => {
                    eprintln!("bench gate FAILED: >30 % slower than the committed baseline");
                    false
                }
            }
        }
        Err(e) => {
            eprintln!("bench gate error: {e}");
            false
        }
    }
}

/// Run one experiment; returns `false` if a requested JSON dump failed or
/// (for `fuzz`) an invariant violation was found.
fn run_one(name: &str, args: &Args, json: &Option<String>) -> bool {
    let (cfg, fz) = (&args.cfg, &args.fuzz);
    let ok = match name {
        "table1" => {
            print!("{}", table1::report());
            true
        }
        "fig1" => {
            let fig = fig1::run_both(cfg);
            print!("{}", fig1::report(&fig));
            print_validation("fig1", fig1::validate(&fig));
            dump_json(json, &fig)
        }
        "fig2" => {
            let ule = fig2::run(cfg);
            print!("{}", fig2::report(&ule));
            print_validation("fig2", fig2::validate(&ule));
            dump_json(json, &ule)
        }
        "table2" => {
            let fig = table2::run(cfg);
            print!("{}", table2::report(&fig));
            dump_json(json, &fig)
        }
        "fig3" | "fig4" | "fig34" => {
            let f = fig34::run(cfg);
            print!("{}", fig34::report(&f));
            print_validation("fig3/4", fig34::validate(&f));
            dump_json(json, &f)
        }
        "fig5" => {
            let cmp = fig5::run(cfg);
            print!("{}", fig5::report(&cmp));
            print_validation("fig5", fig5::validate(&cmp));
            dump_json(json, &cmp)
        }
        "fig6" => {
            let fig = fig6::run_both(cfg);
            print!("{}", fig6::report(&fig));
            let nthreads = ((512.0 * cfg.scale).round() as u32).max(64);
            print_validation("fig6", fig6::validate(&fig, nthreads, 32));
            dump_json(json, &fig)
        }
        "fig7" => {
            let fig = fig7::run_both(cfg);
            print!("{}", fig7::report(&fig));
            print_validation("fig7", fig7::validate(&fig));
            dump_json(json, &fig)
        }
        "fig8" => {
            let cmp = fig8::run(cfg);
            print!("{}", fig8::report(&cmp));
            print_validation("fig8", fig8::validate(&cmp));
            dump_json(json, &cmp)
        }
        "fig9" => {
            let fig = fig9::run(cfg);
            print!("{}", fig9::report(&fig));
            print_validation("fig9", fig9::validate(&fig));
            dump_json(json, &fig)
        }
        "ablations" => {
            let a = ablations::run(cfg);
            print!("{}", ablations::report(&a));
            print_validation("ablations", ablations::validate(&a));
            dump_json(json, &a)
        }
        "desktop" => match desktop::try_run(cfg) {
            Ok(d) => {
                print!("{}", desktop::report(&d));
                print_validation("desktop", desktop::validate(&d));
                dump_json(json, &d)
            }
            Err(e) => {
                eprintln!("desktop cross-check failed: {e}");
                false
            }
        },
        "fuzz" => {
            let r = fuzz::run(fz);
            print!("{}", fuzz::report(&r));
            dump_json(json, &r) && r.failures.is_empty()
        }
        "bench" => {
            let r = bench::run(cfg);
            print!("{}", bench::report(&r));
            // `bench` always writes its JSON artifact; --json overrides the
            // default path. The gate baseline is read before the write so
            // the committed BENCH_sim.json can be both baseline and output.
            let gate_ok = match &args.compare {
                Some(p) => bench_gate(p, &r),
                None => true,
            };
            let path = Some(json.clone().unwrap_or_else(|| "BENCH_sim.json".into()));
            dump_json(&path, &r) && gate_ok
        }
        other => {
            eprintln!("unknown experiment {other}\n{}", usage());
            std::process::exit(2);
        }
    };
    std::io::stdout().flush().ok();
    ok
}

/// `battle trace <fig>`: export a Chrome-trace JSON of one figure's
/// scenario (the `--sched` filter is shared with `fuzz`; default both).
fn run_trace(args: &Args) -> bool {
    let Some(fig) = &args.trace_fig else {
        eprintln!("trace needs a figure argument\n{}", usage());
        std::process::exit(2);
    };
    match scope::run_trace(
        fig,
        &args.fuzz.scheds,
        &args.cfg,
        std::path::Path::new(&args.out),
        args.stream,
    ) {
        Ok(run) => {
            print!("{}", scope::report(&run));
            dump_json(&args.json, &run)
        }
        Err(e) => {
            eprintln!("trace export failed: {e}");
            false
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut ok = true;
    if args.experiment == "trace" {
        ok = run_trace(&args);
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "run" {
        if args.paths.is_empty() {
            eprintln!(
                "run needs at least one scenario file or directory\n{}",
                usage()
            );
            std::process::exit(2);
        }
        let sched_override = match args.fuzz.scheds.as_slice() {
            [one] => Some(*one),
            _ => None,
        };
        ok = scenarios::cli(
            &args.paths,
            &args.cfg,
            sched_override,
            args.trace,
            &args.json,
            args.timeout,
        );
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "tournament" {
        if args.paths.is_empty() {
            eprintln!(
                "tournament needs at least one scenario file or directory\n{}",
                usage()
            );
            std::process::exit(2);
        }
        ok = experiments::tournament::cli(&args.paths, &args.cfg, &args.json);
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "tune" {
        let paths = if args.paths.is_empty() {
            vec!["scenarios".to_string()]
        } else {
            args.paths.clone()
        };
        let scheds: Vec<Sched> = if args.sched_given {
            args.fuzz
                .scheds
                .iter()
                .copied()
                .filter(|&s| Sched::TUNABLE.contains(&s))
                .collect()
        } else {
            Sched::TUNABLE.to_vec()
        };
        if scheds.is_empty() {
            eprintln!("--sched selected no tunable scheduler\n{}", usage());
            std::process::exit(2);
        }
        let tc = experiments::tune::TuneCfg {
            budget: args.budget,
            seed: args.cfg.seed,
            scale: args.cfg.scale,
            scheds,
            write: args.write,
            out_dir: "results/tuned".into(),
        };
        ok = experiments::tune::cli(&paths, &tc, &args.json);
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "chaos" {
        if args.paths.is_empty() {
            eprintln!(
                "chaos needs at least one scenario file or directory\n{}",
                usage()
            );
            std::process::exit(2);
        }
        ok = chaos::cli(&args.paths, &args.cfg, args.plans, &args.json);
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "golden" {
        ok = if args.write {
            golden::write_all()
        } else {
            golden::check_all()
        };
        std::io::stdout().flush().ok();
        if !ok {
            std::process::exit(1);
        }
        return;
    }
    if args.experiment == "all" {
        for name in [
            "table1",
            "fig1",
            "fig2",
            "table2",
            "fig34",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ablations",
            "desktop",
        ] {
            println!("════════════════════════ {name} ════════════════════════");
            ok &= run_one(
                name,
                &args,
                &args.json.as_ref().map(|p| format!("{p}.{name}.json")),
            );
            println!();
        }
    } else {
        ok = run_one(&args.experiment, &args, &args.json);
    }
    if !ok {
        std::process::exit(1);
    }
}
