//! Parallel execution of independent simulations.
//!
//! Every driver in this crate decomposes into independent single-kernel
//! simulations — one per (experiment, scheduler, workload, seed) tuple.
//! Each simulation is deterministic, shares nothing with its siblings, and
//! takes from milliseconds to minutes, so the obvious way to use a
//! multicore host is to run them side by side.
//!
//! The contract that makes this safe to rely on is **result-order
//! stability**: [`run_all`] returns results in *job submission order*, no
//! matter how many worker threads ran them or how they interleaved. Since
//! every simulation is itself deterministic (a seeded [`kernel::Kernel`]
//! with no wall-clock or thread-id inputs), the output of any driver —
//! tables, charts, JSON — is byte-identical for `--threads 1` and
//! `--threads 32`. The cross-thread determinism test in
//! `tests/determinism.rs` pins this down.
//!
//! **Panic isolation (SchedGuard).** Every job runs under
//! [`std::panic::catch_unwind`]: one panicking simulation never takes down
//! its siblings or the pool. The `_supervised` entry points surface the
//! panic as a [`JobOutcome::Panicked`] value in the job's result slot; the
//! legacy [`run_all`]/[`par_map`] entry points finish every sibling first
//! and then re-raise the first panic on the caller's thread, preserving
//! their infallible signatures. Mutex poisoning cannot occur: a panic is
//! caught before it can poison a cell/slot lock, and the locks are taken
//! through a poison-tolerant helper regardless.
//!
//! The pool is a std-only work-stealing-free design: a shared atomic job
//! index hands each worker the next unclaimed job (scoped threads, no
//! channels needed because each job writes to its own result slot). This
//! crate deliberately avoids external thread-pool dependencies so the
//! workspace builds offline.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Global worker-count override. 0 = unset, fall back to
/// [`std::thread::available_parallelism`].
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-pool size used by all subsequent [`run_all`] calls
/// (the `battle --threads N` flag). `0` restores the default
/// (= available parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The worker-pool size currently in effect.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// One independent simulation: a label (for diagnostics) plus the closure
/// that runs it and produces its result.
pub struct SimJob<T> {
    /// Human-readable description, e.g. `"fig5/Apache/cfs"`.
    pub label: String,
    /// The simulation itself.
    pub run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> SimJob<T> {
    /// Package a closure as a job.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> SimJob<T> {
        SimJob {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// How one supervised job ended.
#[derive(Debug)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The job panicked; the payload is rendered to a message. Sibling
    /// jobs and the pool were unaffected.
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// The result, if the job completed.
    pub fn ok(self) -> Option<T> {
        match self {
            JobOutcome::Done(v) => Some(v),
            JobOutcome::Panicked(_) => None,
        }
    }

    /// The panic message, if the job panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            JobOutcome::Done(_) => None,
            JobOutcome::Panicked(m) => Some(m),
        }
    }
}

/// Render a caught panic payload (the `&str`/`String` cases `panic!`
/// produces; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock a mutex, tolerating poisoning (a poisoned lock only means some
/// other job panicked; the data — an `Option` slot — is still valid).
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Raw per-job outcome, carrying the original panic payload so the legacy
/// entry points can re-raise it unchanged.
enum Raw<T> {
    Done(T),
    Panicked(Box<dyn Any + Send>),
}

/// The core pool: run every closure under `catch_unwind`, up to
/// [`threads`] workers, results in input order.
fn run_all_raw<T, F>(jobs: Vec<F>) -> Vec<Raw<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return jobs
            .into_iter()
            .map(|f| match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => Raw::Done(v),
                Err(p) => Raw::Panicked(p),
            })
            .collect();
    }

    // Each job sits in its own cell; workers claim cells through a shared
    // atomic cursor and write each result into the slot with the same
    // index, so collection order never depends on scheduling.
    let cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<Raw<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let Some(f) = lock_clean(&cells[i]).take() else {
                    continue; // cursor hands indices out once; defensive
                };
                let out = match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => Raw::Done(v),
                    Err(p) => Raw::Panicked(p),
                };
                *lock_clean(&slots[i]) = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                // A claimed job always writes its slot (the write is after
                // catch_unwind); an empty slot would mean a worker died
                // outside the catch, which we surface instead of hiding.
                .unwrap_or_else(|| Raw::Panicked(Box::new("job result slot empty".to_string())))
        })
        .collect()
}

/// Run labelled jobs on the pool; results come back in job order.
pub fn run_jobs<T: Send>(jobs: Vec<SimJob<T>>) -> Vec<T> {
    run_all(jobs.into_iter().map(|j| j.run).collect())
}

/// Run labelled jobs with panic isolation; each result slot reports
/// [`JobOutcome::Panicked`] with the job's label prefixed if that job
/// panicked, while its siblings complete normally.
pub fn run_jobs_supervised<T: Send>(jobs: Vec<SimJob<T>>) -> Vec<JobOutcome<T>> {
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let raw = run_all_raw(jobs.into_iter().map(|j| j.run).collect());
    raw.into_iter()
        .zip(labels)
        .map(|(r, label)| match r {
            Raw::Done(v) => JobOutcome::Done(v),
            Raw::Panicked(p) => {
                JobOutcome::Panicked(format!("{label}: {}", panic_message(p.as_ref())))
            }
        })
        .collect()
}

/// Run every closure, using up to [`threads`] worker threads, and return
/// the results **in input order** regardless of execution interleaving.
///
/// With one worker (or one job) everything runs inline on the caller's
/// thread — no spawning, identical code path to the sequential version.
///
/// A panicking job no longer aborts its siblings: every other job still
/// runs to completion, after which the first panic is re-raised here.
/// Use [`run_all_supervised`] to receive panics as values instead.
pub fn run_all<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    let out: Vec<T> = run_all_raw(jobs)
        .into_iter()
        .filter_map(|r| match r {
            Raw::Done(v) => Some(v),
            Raw::Panicked(p) => {
                if first_panic.is_none() {
                    first_panic = Some(p);
                }
                None
            }
        })
        .collect();
    if let Some(p) = first_panic {
        std::panic::resume_unwind(p);
    }
    out
}

/// [`run_all`] with panic isolation: each job's slot reports how it ended.
pub fn run_all_supervised<T, F>(jobs: Vec<F>) -> Vec<JobOutcome<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    run_all_raw(jobs)
        .into_iter()
        .map(|r| match r {
            Raw::Done(v) => JobOutcome::Done(v),
            Raw::Panicked(p) => JobOutcome::Panicked(panic_message(p.as_ref())),
        })
        .collect()
}

/// Apply `f` to every item on the pool; results in input order.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Send + Sync,
{
    let f = &f;
    run_all(items.into_iter().map(|it| move || f(it)).collect())
}

/// [`par_map`] with panic isolation: a panicking item becomes
/// [`JobOutcome::Panicked`] while the rest of the sweep completes.
pub fn par_map_supervised<I, T, F>(items: Vec<I>, f: F) -> Vec<JobOutcome<T>>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Send + Sync,
{
    let f = &f;
    run_all_supervised(items.into_iter().map(|it| move || f(it)).collect())
}

/// Run two closures, possibly in parallel, returning both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let a = fa();
        let b = match hb.join() {
            Ok(b) => b,
            // Re-raise the worker's panic on the caller's thread with its
            // original payload instead of a generic join abort.
            Err(p) => std::panic::resume_unwind(p),
        };
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `THREADS` is process-global and the harness runs tests concurrently;
    /// every test that touches it takes this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_submission_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is
                    // actually exercised.
                    std::thread::sleep(std::time::Duration::from_micros(((i * 7) % 13) as u64));
                    i * 10
                }
            })
            .collect();
        let out = run_all(jobs);
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
        set_threads(0);
    }

    #[test]
    fn single_thread_runs_inline() {
        let _g = LOCK.lock().unwrap();
        set_threads(1);
        let main_id = std::thread::current().id();
        let ids = run_all(vec![move || std::thread::current().id(), move || {
            std::thread::current().id()
        }]);
        assert!(ids.iter().all(|&id| id == main_id));
        set_threads(0);
    }

    #[test]
    fn par_map_and_join() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        assert_eq!(par_map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
        assert_eq!(join(|| "a", || "b"), ("a", "b"));
        set_threads(0);
    }

    #[test]
    fn labelled_jobs_round_trip() {
        let jobs = vec![SimJob::new("one", || 1), SimJob::new("two", || 2)];
        assert_eq!(jobs[0].label, "one");
        assert_eq!(run_jobs(jobs), vec![1, 2]);
    }

    #[test]
    fn supervised_panic_is_isolated_per_slot() {
        let _g = LOCK.lock().unwrap();
        for workers in [1, 4] {
            set_threads(workers);
            let out = par_map_supervised(vec![1, 2, 3, 4], |x| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                x * 10
            });
            assert!(matches!(out[0], JobOutcome::Done(10)));
            assert_eq!(out[1].panic_message(), Some("boom on 2"));
            assert!(matches!(out[2], JobOutcome::Done(30)));
            assert!(matches!(out[3], JobOutcome::Done(40)));
        }
        set_threads(0);
    }

    #[test]
    fn run_all_reraises_after_finishing_siblings() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        use std::sync::atomic::AtomicUsize;
        static RAN: AtomicUsize = AtomicUsize::new(0);
        RAN.store(0, Ordering::Relaxed);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| {
                RAN.fetch_add(1, Ordering::Relaxed);
                1
            }),
            Box::new(|| panic!("legacy propagation")),
            Box::new(|| {
                RAN.fetch_add(1, Ordering::Relaxed);
                3
            }),
        ];
        let caught = catch_unwind(AssertUnwindSafe(|| run_all(jobs)));
        assert!(caught.is_err(), "legacy run_all still propagates panics");
        assert_eq!(RAN.load(Ordering::Relaxed), 2, "siblings ran to completion");
        set_threads(0);
    }

    #[test]
    fn supervised_labels_prefix_panics() {
        let jobs = vec![
            SimJob::new("ok-job", || 7usize),
            SimJob::new("bad-job", || panic!("exploded")),
        ];
        let out = run_jobs_supervised(jobs);
        assert!(matches!(out[0], JobOutcome::Done(7)));
        assert_eq!(out[1].panic_message(), Some("bad-job: exploded"));
    }
}
