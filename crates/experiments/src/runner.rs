//! Parallel execution of independent simulations.
//!
//! Every driver in this crate decomposes into independent single-kernel
//! simulations — one per (experiment, scheduler, workload, seed) tuple.
//! Each simulation is deterministic, shares nothing with its siblings, and
//! takes from milliseconds to minutes, so the obvious way to use a
//! multicore host is to run them side by side.
//!
//! The contract that makes this safe to rely on is **result-order
//! stability**: [`run_all`] returns results in *job submission order*, no
//! matter how many worker threads ran them or how they interleaved. Since
//! every simulation is itself deterministic (a seeded [`kernel::Kernel`]
//! with no wall-clock or thread-id inputs), the output of any driver —
//! tables, charts, JSON — is byte-identical for `--threads 1` and
//! `--threads 32`. The cross-thread determinism test in
//! `tests/determinism.rs` pins this down.
//!
//! The pool is a std-only work-stealing-free design: a shared atomic job
//! index hands each worker the next unclaimed job (scoped threads, no
//! channels needed because each job writes to its own result slot). This
//! crate deliberately avoids external thread-pool dependencies so the
//! workspace builds offline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override. 0 = unset, fall back to
/// [`std::thread::available_parallelism`].
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the worker-pool size used by all subsequent [`run_all`] calls
/// (the `battle --threads N` flag). `0` restores the default
/// (= available parallelism).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The worker-pool size currently in effect.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// One independent simulation: a label (for diagnostics) plus the closure
/// that runs it and produces its result.
pub struct SimJob<T> {
    /// Human-readable description, e.g. `"fig5/Apache/cfs"`.
    pub label: String,
    /// The simulation itself.
    pub run: Box<dyn FnOnce() -> T + Send>,
}

impl<T> SimJob<T> {
    /// Package a closure as a job.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'static) -> SimJob<T> {
        SimJob {
            label: label.into(),
            run: Box::new(run),
        }
    }
}

/// Run labelled jobs on the pool; results come back in job order.
pub fn run_jobs<T: Send>(jobs: Vec<SimJob<T>>) -> Vec<T> {
    run_all(jobs.into_iter().map(|j| j.run).collect())
}

/// Run every closure, using up to [`threads`] worker threads, and return
/// the results **in input order** regardless of execution interleaving.
///
/// With one worker (or one job) everything runs inline on the caller's
/// thread — no spawning, identical code path to the sequential version.
pub fn run_all<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }

    // Each job sits in its own cell; workers claim cells through a shared
    // atomic cursor and write each result into the slot with the same
    // index, so collection order never depends on scheduling.
    let cells: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let f = cells[i].lock().unwrap().take().expect("job claimed once");
                let out = f();
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every job ran"))
        .collect()
}

/// Apply `f` to every item on the pool; results in input order.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Send + Sync,
{
    let f = &f;
    run_all(items.into_iter().map(|it| move || f(it)).collect())
}

/// Run two closures, possibly in parallel, returning both results.
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if threads() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let a = fa();
        let b = hb.join().expect("worker panicked");
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `THREADS` is process-global and the harness runs tests concurrently;
    /// every test that touches it takes this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn results_come_back_in_submission_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                move || {
                    // Stagger finish times so out-of-order completion is
                    // actually exercised.
                    std::thread::sleep(std::time::Duration::from_micros(((i * 7) % 13) as u64));
                    i * 10
                }
            })
            .collect();
        let out = run_all(jobs);
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
        set_threads(0);
    }

    #[test]
    fn single_thread_runs_inline() {
        let _g = LOCK.lock().unwrap();
        set_threads(1);
        let main_id = std::thread::current().id();
        let ids = run_all(vec![move || std::thread::current().id(), move || {
            std::thread::current().id()
        }]);
        assert!(ids.iter().all(|&id| id == main_id));
        set_threads(0);
    }

    #[test]
    fn par_map_and_join() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        assert_eq!(par_map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
        assert_eq!(join(|| "a", || "b"), ("a", "b"));
        set_threads(0);
    }

    #[test]
    fn labelled_jobs_round_trip() {
        let jobs = vec![SimJob::new("one", || 1), SimJob::new("two", || 2)];
        assert_eq!(jobs[0].label, "one");
        assert_eq!(run_jobs(jobs), vec![1, 2]);
    }
}
