//! Ablations of the design choices the paper (and DESIGN.md) call out:
//! what happens if you turn each mechanism off?
//!
//! * **CFS cgroups** (§2.1): fairness between applications vs between
//!   threads — decides how much CPU fibo keeps under sysbench (Fig 1a).
//! * **ULE's periodic balancer bug** (§2.2 footnote / the paper’s reference \[1\]): stock FreeBSD
//!   shipped with the long-term balancer running only once; the paper fixed
//!   it. Without the fix, the Figure 6 pile never drains past idle steals.
//! * **CFS NUMA imbalance tolerance** (§6.1): the 25% rule is why "CFS
//!   never achieves perfect load balance".
//! * **CFS wakeup preemption** (§5.3): disabling it closes most of ULE's
//!   apache advantage.

use cfs::{params::CfsParams, Cfs};
use kernel::{Kernel, SimConfig};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use ule::{params::UleParams, Ule};
use workloads::{synthetic, sysbench::SysbenchCfg, P};

use crate::RunCfg;

/// Results of the four ablations.
#[derive(Debug, serde::Serialize)]
pub struct Ablations {
    /// fibo's CPU share under sysbench with CFS cgroups on vs off.
    pub cfs_fibo_share_cgroups_on: f64,
    /// ... and with per-thread fairness (pre-2.6.38 behaviour).
    pub cfs_fibo_share_cgroups_off: f64,
    /// Threads left on core 0 at the horizon with the paper's balancer fix.
    pub ule_core0_with_balancer: u32,
    /// ... and with the stock FreeBSD bug (balancer never runs).
    pub ule_core0_with_bug: u32,
    /// CFS final spread with the default 25% NUMA tolerance.
    pub cfs_spread_pct125: u32,
    /// ... and with the tolerance removed (pct = 100).
    pub cfs_spread_pct100: u32,
    /// Apache requests/s with CFS wakeup preemption enabled.
    pub cfs_apache_rps_preempt: f64,
    /// ... and effectively disabled (huge wakeup granularity).
    pub cfs_apache_rps_no_preempt: f64,
}

fn fibo_share(params: CfsParams, cfg: &RunCfg) -> f64 {
    let topo = Topology::single_core();
    let sched = Box::new(Cfs::with_params(&topo, params));
    let mut k = Kernel::new(topo, SimConfig::with_seed(cfg.seed), sched);
    let fibo = k.queue_app(Time::ZERO, synthetic::fibo(Dur::secs(60)));
    let spec = workloads::sysbench::sysbench(
        &mut k,
        SysbenchCfg {
            threads: 80,
            total_tx: ((80_000.0 * cfg.scale) as u64).max(1000),
            ..Default::default()
        },
    );
    let _db = k.queue_app(Time::ZERO, spec);
    // Measure fibo's share over a window where sysbench is in full swing.
    let start = Time::ZERO + Dur::secs_f64(4.0);
    let span = Dur::secs_f64(6.0);
    k.run_until(start);
    let tid = k.app_tasks(fibo)[0];
    let before = k.task_runtime(tid);
    k.run_until(start + span);
    (k.task_runtime(tid) - before).as_secs_f64() / span.as_secs_f64()
}

fn ule_core0_after(params: UleParams, cfg: &RunCfg) -> u32 {
    let topo = Topology::opteron_6172();
    let n = ((512.0 * cfg.scale) as usize).max(64);
    let sched = Box::new(Ule::with_params(&topo, params, cfg.seed));
    let mut k = Kernel::new(topo, SimConfig::with_seed(cfg.seed), sched);
    let app = k.queue_app(Time::ZERO, synthetic::pinned_spinners(n));
    k.queue_unpin(Time::ZERO + Dur::secs(1), app);
    k.run_until(Time::ZERO + Dur::secs_f64(1.0 + 60.0 * cfg.scale.max(0.2)));
    k.nr_queued(CpuId(0)) as u32
}

fn cfs_spread(params: CfsParams, cfg: &RunCfg) -> u32 {
    let topo = Topology::opteron_6172();
    let n = ((512.0 * cfg.scale) as usize).max(64);
    let sched = Box::new(Cfs::with_params(&topo, params));
    let mut k = Kernel::new(topo, SimConfig::with_seed(cfg.seed), sched);
    let app = k.queue_app(Time::ZERO, synthetic::pinned_spinners(n));
    k.queue_unpin(Time::ZERO + Dur::secs(1), app);
    k.run_until(Time::ZERO + Dur::secs(21));
    let counts: Vec<usize> = topo_counts(&k);
    (*counts.iter().max().unwrap() - *counts.iter().min().unwrap()) as u32
}

fn topo_counts(k: &Kernel) -> Vec<usize> {
    k.topology().all_cpus().map(|c| k.nr_queued(c)).collect()
}

fn apache_rps(params: CfsParams, cfg: &RunCfg) -> f64 {
    let topo = Topology::single_core();
    let sched = Box::new(Cfs::with_params(&topo, params));
    let mut k = Kernel::new(topo, SimConfig::with_seed(cfg.seed), sched);
    let p = P::scaled(1, cfg.scale);
    let spec = workloads::apache::apache(&mut k, &p);
    let app = k.queue_app(Time::ZERO, spec);
    k.run_until_apps_done(Time::ZERO + Dur::secs(600));
    k.app(app).ops_per_sec(k.now())
}

/// Run all four ablations.
pub fn run(cfg: &RunCfg) -> Ablations {
    let defaults = CfsParams::default();
    let mut no_cgroups = CfsParams::default();
    no_cgroups.cgroups = false;
    let mut pct100 = CfsParams::default();
    pct100.imbalance_pct_numa = 100;
    pct100.imbalance_pct_llc = 100;
    let mut no_preempt = CfsParams::default();
    no_preempt.wakeup_granularity = Dur::secs(10); // effectively off

    let ule_fixed = UleParams::default();
    let mut ule_buggy = UleParams::default();
    ule_buggy.periodic_balance = false;

    // All eight ablation runs are independent simulations; hand them to
    // the runner pool. `u32` results are carried as `f64` (they are small
    // integer counts, exactly representable).
    let d2 = defaults.clone();
    let d3 = defaults.clone();
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send + '_>> = vec![
        Box::new(|| fibo_share(defaults, cfg)),
        Box::new(|| fibo_share(no_cgroups, cfg)),
        Box::new(|| f64::from(ule_core0_after(ule_fixed, cfg))),
        Box::new(|| f64::from(ule_core0_after(ule_buggy, cfg))),
        Box::new(|| f64::from(cfs_spread(d2, cfg))),
        Box::new(|| f64::from(cfs_spread(pct100, cfg))),
        Box::new(|| apache_rps(d3, cfg)),
        Box::new(|| apache_rps(no_preempt, cfg)),
    ];
    let r = crate::runner::run_all(jobs);
    Ablations {
        cfs_fibo_share_cgroups_on: r[0],
        cfs_fibo_share_cgroups_off: r[1],
        ule_core0_with_balancer: r[2] as u32,
        ule_core0_with_bug: r[3] as u32,
        cfs_spread_pct125: r[4] as u32,
        cfs_spread_pct100: r[5] as u32,
        cfs_apache_rps_preempt: r[6],
        cfs_apache_rps_no_preempt: r[7],
    }
}

/// Render the ablation table.
pub fn report(a: &Ablations) -> String {
    let mut t = metrics::Table::new(&["ablation", "default", "ablated", "effect"]);
    t.push(&[
        "CFS cgroups (fibo share under sysbench)".into(),
        format!("{:.0}%", a.cfs_fibo_share_cgroups_on * 100.0),
        format!("{:.0}%", a.cfs_fibo_share_cgroups_off * 100.0),
        "per-app → per-thread fairness (§2.1)".into(),
    ]);
    t.push(&[
        "ULE periodic balancer (threads left on core0)".into(),
        format!("{}", a.ule_core0_with_balancer),
        format!("{}", a.ule_core0_with_bug),
        "stock FreeBSD bug [1]: only idle steals drain the pile".into(),
    ]);
    t.push(&[
        "CFS NUMA tolerance (final spread)".into(),
        format!("{}", a.cfs_spread_pct125),
        format!("{}", a.cfs_spread_pct100),
        "25% rule is why CFS stays imperfect (§6.1)".into(),
    ]);
    t.push(&[
        "CFS wakeup preemption (apache req/s)".into(),
        format!("{:.0}", a.cfs_apache_rps_preempt),
        format!("{:.0}", a.cfs_apache_rps_no_preempt),
        "preempting ab costs throughput (§5.3)".into(),
    ]);
    let mut s = String::from("Ablations — design choices switched off one at a time\n");
    s.push_str(&t.render());
    s
}

/// Shape checks for the ablations.
pub fn validate(a: &Ablations) -> Vec<String> {
    let mut bad = Vec::new();
    if !(a.cfs_fibo_share_cgroups_on > 2.0 * a.cfs_fibo_share_cgroups_off) {
        bad.push(format!(
            "cgroups should protect fibo: {:.2} vs {:.2}",
            a.cfs_fibo_share_cgroups_on, a.cfs_fibo_share_cgroups_off
        ));
    }
    if a.ule_core0_with_bug <= a.ule_core0_with_balancer + 10 {
        bad.push(format!(
            "the balancer bug should leave the pile: {} vs {}",
            a.ule_core0_with_bug, a.ule_core0_with_balancer
        ));
    }
    if a.cfs_spread_pct100 > a.cfs_spread_pct125 {
        bad.push(format!(
            "removing the tolerance should not worsen the spread: {} vs {}",
            a.cfs_spread_pct100, a.cfs_spread_pct125
        ));
    }
    if !(a.cfs_apache_rps_no_preempt > a.cfs_apache_rps_preempt * 1.05) {
        bad.push(format!(
            "disabling wakeup preemption should speed apache up: {:.0} vs {:.0}",
            a.cfs_apache_rps_no_preempt, a.cfs_apache_rps_preempt
        ));
    }
    bad
}
