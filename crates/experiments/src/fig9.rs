//! Figure 9: multi-application workloads on the 32-core machine (§6.4).
//!
//! Four pairs: c-ray + EP (batch + batch), fibo + sysbench and
//! blackscholes + ferret (batch + interactive), apache + sysbench
//! (interactive + interactive). Each application's performance is reported
//! relative to running **alone on CFS**.

use simcore::{Dur, Time};
use topology::Topology;
use workloads::{suite, Entry, Metric, P};

use crate::{make_kernel, pct_diff, perf_of, RunCfg, Sched};

/// The four workload pairs, with the paper's category labels.
pub const PAIRS: [(&str, &str, &str); 4] = [
    ("C-Ray", "EP", "batch + batch"),
    ("fibo", "Sysbench", "batch + interactive"),
    ("blackscholes", "ferret", "batch + interactive"),
    ("Apache", "Sysbench", "interactive + interactive"),
];

/// Performance of one app in one configuration, relative to alone-on-CFS.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig9Cell {
    /// Application name.
    pub name: String,
    /// Workload-pair category.
    pub category: &'static str,
    /// % change co-scheduled on CFS vs alone on CFS.
    pub cfs_multi_pct: f64,
    /// % change alone on ULE vs alone on CFS.
    pub ule_single_pct: f64,
    /// % change co-scheduled on ULE vs alone on CFS.
    pub ule_multi_pct: f64,
}

/// The full figure.
#[derive(Debug, serde::Serialize)]
pub struct Fig9 {
    /// Two cells per pair (one per application).
    pub cells: Vec<Fig9Cell>,
}

fn find_entry(name: &str) -> Entry {
    if name == "fibo" {
        return Entry {
            name: "fibo",
            metric: Metric::InvTime,
            build: workloads::synthetic::fibo_suite,
        };
    }
    suite()
        .into_iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("no suite entry named {name}"))
}

/// Run one (pair, scheduler) configuration; returns perf of (a, b).
fn run_pair(a: &Entry, b: &Entry, sched: Sched, topo: &Topology, cfg: &RunCfg) -> (f64, f64) {
    let mut k = make_kernel(topo, sched, cfg.seed);
    let p = P::scaled(topo.nr_cpus(), cfg.scale);
    let sa = (a.build)(&mut k, &p);
    let ia = k.queue_app(Time::ZERO, sa);
    let sb = (b.build)(&mut k, &p);
    let ib = k.queue_app(Time::ZERO, sb);
    let limit = Time::ZERO + Dur::secs_f64(900.0 * cfg.scale.max(0.05) + 120.0);
    let done = k.run_until_apps_done(limit);
    (perf_of(a, &k, ia, done).perf, perf_of(b, &k, ib, done).perf)
}

fn run_alone(e: &Entry, sched: Sched, topo: &Topology, cfg: &RunCfg) -> f64 {
    crate::run_entry(e, sched, topo, cfg, false).perf
}

/// The six independent simulations behind one workload pair.
#[derive(Clone, Copy)]
enum Sim {
    /// `.0` = perf of app A or B alone under the scheduler.
    AloneA(Sched),
    AloneB(Sched),
    /// `.0`/`.1` = perf of A/B co-scheduled under the scheduler.
    Together(Sched),
}

/// Run the whole figure. Each pair decomposes into six independent
/// simulations (4 alone + 2 co-scheduled); all 24 go to the runner pool.
pub fn run(cfg: &RunCfg) -> Fig9 {
    let topo = Topology::opteron_6172();
    const SIMS: [Sim; 6] = [
        Sim::AloneA(Sched::Cfs),
        Sim::AloneB(Sched::Cfs),
        Sim::AloneA(Sched::Ule),
        Sim::AloneB(Sched::Ule),
        Sim::Together(Sched::Cfs),
        Sim::Together(Sched::Ule),
    ];
    let jobs: Vec<(usize, Sim)> = (0..PAIRS.len())
        .flat_map(|pi| SIMS.into_iter().map(move |s| (pi, s)))
        .collect();
    let results = crate::runner::par_map(jobs, |(pi, sim)| {
        let (an, bn, _) = PAIRS[pi];
        let a = find_entry(an);
        let b = find_entry(bn);
        match sim {
            Sim::AloneA(s) => (run_alone(&a, s, &topo, cfg), f64::NAN),
            Sim::AloneB(s) => (run_alone(&b, s, &topo, cfg), f64::NAN),
            Sim::Together(s) => run_pair(&a, &b, s, &topo, cfg),
        }
    });

    let mut cells = Vec::new();
    for (pi, (an, bn, category)) in PAIRS.into_iter().enumerate() {
        let r = &results[pi * SIMS.len()..(pi + 1) * SIMS.len()];
        let a_cfs_alone = r[0].0;
        let b_cfs_alone = r[1].0;
        let a_ule_alone = r[2].0;
        let b_ule_alone = r[3].0;
        let (a_cfs_multi, b_cfs_multi) = r[4];
        let (a_ule_multi, b_ule_multi) = r[5];
        cells.push(Fig9Cell {
            name: an.to_string(),
            category,
            cfs_multi_pct: pct_diff(a_cfs_multi, a_cfs_alone),
            ule_single_pct: pct_diff(a_ule_alone, a_cfs_alone),
            ule_multi_pct: pct_diff(a_ule_multi, a_cfs_alone),
        });
        cells.push(Fig9Cell {
            name: bn.to_string(),
            category,
            cfs_multi_pct: pct_diff(b_cfs_multi, b_cfs_alone),
            ule_single_pct: pct_diff(b_ule_alone, b_cfs_alone),
            ule_multi_pct: pct_diff(b_ule_multi, b_cfs_alone),
        });
    }
    Fig9 { cells }
}

/// Render as a table (the paper plots grouped bars).
pub fn report(fig: &Fig9) -> String {
    let mut t = metrics::Table::new(&[
        "app",
        "category",
        "CFS multiapp",
        "ULE singleapp",
        "ULE multiapp",
    ]);
    for c in &fig.cells {
        t.push(&[
            c.name.clone(),
            c.category.to_string(),
            format!("{:+.1}%", c.cfs_multi_pct),
            format!("{:+.1}%", c.ule_single_pct),
            format!("{:+.1}%", c.ule_multi_pct),
        ]);
    }
    let mut s = String::from("Figure 9 — multi-application workloads (relative to alone-on-CFS)\n");
    s.push_str(&t.render());
    s.push_str(
        "(paper: ferret protected by ULE, blackscholes ~−80% on ULE; sysbench+fibo worse on ULE)\n",
    );
    s
}

/// Qualitative checks from §6.4 — the subset of the paper's observations
/// that the simulation reproduces (see EXPERIMENTS.md for the documented
/// divergence on ferret's degree of protection).
pub fn validate(fig: &Fig9) -> Vec<String> {
    let mut bad = Vec::new();
    let cell = |name: &str| fig.cells.iter().find(|c| c.name == name);
    // Interactive + interactive (apache + sysbench): "CFS and ULE also
    // perform similarly" — neither app is badly hurt on either scheduler.
    for name in ["Apache"] {
        if let Some(c) = cell(name) {
            if c.cfs_multi_pct < -20.0 || c.ule_multi_pct < -20.0 {
                bad.push(format!(
                    "{name} (interactive+interactive) should be barely impacted: CFS {:+.1}%, ULE {:+.1}%",
                    c.cfs_multi_pct, c.ule_multi_pct
                ));
            }
        }
    }
    // fibo + sysbench on 32 cores: "fibo does not starve" (MySQL's lock
    // sleeps leave CPU for it) — unlike the single-core §5.1 result.
    if let Some(f) = fig.cells.iter().find(|c| c.name == "fibo") {
        if f.ule_multi_pct < -20.0 {
            bad.push(format!(
                "fibo must not starve on the multicore run: {:+.1}%",
                f.ule_multi_pct
            ));
        }
    }
    // The batch + interactive pair interferes on both schedulers; the
    // *degree* to which ULE shields ferret depends on wake-density
    // dynamics the simulation only partially captures (see EXPERIMENTS.md),
    // so only gross inversions are flagged.
    if let (Some(ferret), Some(bs)) = (cell("ferret"), cell("blackscholes")) {
        if bs.ule_multi_pct > 5.0 && ferret.ule_multi_pct > 5.0 {
            bad.push(
                "co-scheduling blackscholes+ferret should cost at least one of them".to_string(),
            );
        }
    }
    // Batch + batch (c-ray + EP): "CFS and ULE perform similarly".
    if let Some(ep) = cell("EP") {
        if (ep.ule_multi_pct - ep.cfs_multi_pct).abs() > 25.0 {
            bad.push(format!(
                "EP should be co-scheduled similarly: CFS {:+.1}% vs ULE {:+.1}%",
                ep.cfs_multi_pct, ep.ule_multi_pct
            ));
        }
    }
    bad
}
