//! `battle tournament` — rank every registered scheduler over a corpus.
//!
//! Runs each scenario file under each scheduler in [`Sched::ALL`] on the
//! supervised worker pool and distils the outcomes into a scorecard. Four
//! metrics feed the ranking:
//!
//! * **throughput** — application operations per simulated second,
//! * **p99 run-delay** — the 99th percentile of runnable→running dispatch
//!   delay (lower is better),
//! * **max starvation wait** — the longest any task sat runnable without
//!   running (lower is better),
//! * **Jain fairness** — `(Σx)² / (n·Σx²)` over per-task CPU service,
//!   1.0 when every task got identical service.
//!
//! Because the metrics live on incomparable scales, each is normalised
//! *within a scenario* against the best scheduler on that scenario
//! (best = 1.0), the four normalised values average into the cell's
//! composite score, and a scheduler's tournament score is its mean
//! composite across the corpus. A run that crashed, violated an invariant
//! or was aborted by supervision scores 0 on that scenario.
//!
//! Determinism: jobs run through [`runner::par_map_supervised`], which
//! returns results in submission order whatever the pool size, and the
//! scoring arithmetic consumes them in that order — the scorecard (ASCII
//! and JSON) is byte-identical across `--threads` values.

use std::path::PathBuf;

use metrics::table::Table;
use scenario::{EngineError, RunOutput, Scenario, Sched};

use crate::{check_mode, runner, scenarios, RunCfg};

/// One (scenario, scheduler) outcome, reduced to the scorecard metrics.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Cell {
    /// Scenario name.
    pub scenario: String,
    /// Scheduler that produced this cell.
    pub sched: Sched,
    /// Application operations per simulated second, summed over apps.
    pub throughput: f64,
    /// 99th-percentile runnable→running delay, milliseconds.
    pub p99_run_delay_ms: f64,
    /// Longest runnable-without-running wait, milliseconds.
    pub max_wait_ms: f64,
    /// Jain fairness index over per-task CPU service, in `(0, 1]`.
    pub jain: f64,
    /// Decision digest of the run (16 hex digits).
    pub digest_hex: String,
    /// `true` if supervision aborted the run (salvaged metrics).
    pub partial: bool,
}

/// A scheduler's aggregate standing over the corpus.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Standing {
    /// 1-based rank (1 = winner).
    pub rank: usize,
    /// The scheduler.
    pub sched: Sched,
    /// Mean composite score over all scenarios, in `[0, 1]`.
    pub score: f64,
    /// Scenarios where this scheduler had the best composite.
    pub wins: usize,
    /// Mean throughput over completed runs (ops/simulated-second).
    pub mean_throughput: f64,
    /// Mean p99 run-delay over completed runs, milliseconds.
    pub mean_p99_run_delay_ms: f64,
    /// Worst max-starvation-wait over completed runs, milliseconds.
    pub worst_max_wait_ms: f64,
    /// Mean Jain fairness over completed runs.
    pub mean_jain: f64,
    /// Completed (non-failed, non-partial) runs out of the corpus size.
    pub completed: usize,
}

/// The full tournament result: ranked standings plus every cell.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TournamentReport {
    /// Work-volume scale the corpus ran at.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Scenario names, in corpus order.
    pub scenarios: Vec<String>,
    /// Standings, best first.
    pub standings: Vec<Standing>,
    /// Every (scenario, scheduler) cell that produced a run.
    pub cells: Vec<Cell>,
    /// Runs aborted by supervision (their cells carry `partial: true`).
    pub partial_runs: usize,
    /// Crashes, spec errors and panics; empty means a clean tournament.
    pub failures: Vec<String>,
}

/// Reduce a finished run (plus its kernel) to scorecard metrics. The
/// kernel is consulted for per-task service: dead tasks stay in the task
/// table with their final `sum_exec`, so the Jain index covers every
/// application task that ever ran, not just survivors.
pub(crate) fn cell_of(out: &RunOutput) -> Cell {
    let r = &out.run;
    let total_ops: u64 = r.apps.iter().map(|a| a.ops).sum();
    let throughput = if r.end_s > 0.0 {
        total_ops as f64 / r.end_s
    } else {
        0.0
    };
    let service: Vec<f64> = out
        .kernel
        .tasks()
        .iter()
        .filter(|t| !t.kernel_thread && !t.sum_exec.is_zero())
        .map(|t| t.sum_exec.as_nanos() as f64)
        .collect();
    let jain = if service.is_empty() {
        1.0
    } else {
        let sum: f64 = service.iter().sum();
        let sq: f64 = service.iter().map(|x| x * x).sum();
        (sum * sum) / (service.len() as f64 * sq)
    };
    Cell {
        scenario: r.scenario.clone(),
        sched: r.sched,
        throughput,
        p99_run_delay_ms: r.run_delay.p99_ms,
        max_wait_ms: r.counters.max_runnable_wait.as_nanos() as f64 / 1e6,
        jain,
        digest_hex: r.digest_hex.clone(),
        partial: r.partial,
    }
}

/// Normalised "higher is better" score of `v` against the best value.
fn norm_hi(v: f64, best: f64) -> f64 {
    if best <= 0.0 {
        1.0 // nobody did any work: no signal, everyone ties
    } else {
        (v / best).clamp(0.0, 1.0)
    }
}

/// Normalised "lower is better" score of `v` against the best (smallest)
/// value.
fn norm_lo(v: f64, best: f64) -> f64 {
    if v <= 0.0 {
        1.0 // zero delay is unbeatable
    } else {
        (best / v).clamp(0.0, 1.0)
    }
}

/// Composite score of one cell given the per-scenario bests.
fn composite(c: &Cell, best_thr: f64, best_delay: f64, best_wait: f64) -> f64 {
    (norm_hi(c.throughput, best_thr)
        + norm_lo(c.p99_run_delay_ms, best_delay)
        + norm_lo(c.max_wait_ms, best_wait)
        + c.jain.clamp(0.0, 1.0))
        / 4.0
}

/// Run the tournament over pre-loaded scenarios.
pub fn run(scenarios_list: &[(PathBuf, Scenario)], cfg: &RunCfg) -> TournamentReport {
    let scheds = Sched::ALL;
    let jobs: Vec<(usize, Sched)> = (0..scenarios_list.len())
        .flat_map(|i| scheds.into_iter().map(move |s| (i, s)))
        .collect();
    let outcomes = runner::par_map_supervised(jobs.clone(), |(i, sched)| {
        let (_, sc) = &scenarios_list[i];
        let opts = scenario::EngineOpts {
            scale: cfg.scale,
            seed: cfg.seed,
            check: check_mode(),
            trace_capacity: 0,
            ..scenario::EngineOpts::default()
        };
        scenario::run_sched(sc, sched, &opts)
            .map(|out| cell_of(&out))
            .map_err(|e| match e {
                EngineError::Spec(s) => format!("[{} × {}] {s}", sc.name, sched.name()),
                EngineError::Crash(c) => {
                    format!("[{} × {}] crash: {}", sc.name, sched.name(), c.error)
                }
            })
    });

    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // (scenario index, sched) → cell index, for the scoring pass.
    let mut by_job: Vec<Option<usize>> = vec![None; jobs.len()];
    for (j, (&(i, sched), outcome)) in jobs.iter().zip(outcomes).enumerate() {
        match outcome {
            runner::JobOutcome::Done(Ok(cell)) => {
                by_job[j] = Some(cells.len());
                cells.push(cell);
            }
            runner::JobOutcome::Done(Err(msg)) => failures.push(msg),
            runner::JobOutcome::Panicked(msg) => failures.push(format!(
                "[{} × {}] panic: {msg}",
                scenarios_list[i].1.name,
                sched.name()
            )),
        }
    }

    // Score scenario by scenario: normalise against the best completed
    // run, then average composites per scheduler. Failed or partial runs
    // contribute a 0 composite for that scenario.
    let nscen = scenarios_list.len();
    let mut score_sum = vec![0.0f64; scheds.len()];
    let mut wins = vec![0usize; scheds.len()];
    for i in 0..nscen {
        let row: Vec<Option<&Cell>> = (0..scheds.len())
            .map(|s| {
                by_job[i * scheds.len() + s]
                    .map(|ci| &cells[ci])
                    .filter(|c| !c.partial)
            })
            .collect();
        let complete = || row.iter().flatten();
        let best_thr = complete().map(|c| c.throughput).fold(0.0, f64::max);
        let best_delay = complete()
            .map(|c| c.p99_run_delay_ms)
            .fold(f64::INFINITY, f64::min);
        let best_wait = complete()
            .map(|c| c.max_wait_ms)
            .fold(f64::INFINITY, f64::min);
        let mut best_score = -1.0;
        let mut best_sched = None;
        for (s, cell) in row.iter().enumerate() {
            let sc = match cell {
                Some(c) => composite(c, best_thr, best_delay, best_wait),
                None => 0.0,
            };
            score_sum[s] += sc;
            if sc > best_score {
                best_score = sc;
                best_sched = Some(s);
            }
        }
        if let Some(w) = best_sched {
            if best_score > 0.0 {
                wins[w] += 1;
            }
        }
    }

    let mut standings: Vec<Standing> = scheds
        .iter()
        .enumerate()
        .map(|(s, &sched)| {
            let mine: Vec<&Cell> = cells
                .iter()
                .filter(|c| c.sched == sched && !c.partial)
                .collect();
            let n = mine.len().max(1) as f64;
            Standing {
                rank: 0,
                sched,
                score: if nscen > 0 {
                    score_sum[s] / nscen as f64
                } else {
                    0.0
                },
                wins: wins[s],
                mean_throughput: mine.iter().map(|c| c.throughput).sum::<f64>() / n,
                mean_p99_run_delay_ms: mine.iter().map(|c| c.p99_run_delay_ms).sum::<f64>() / n,
                worst_max_wait_ms: mine.iter().map(|c| c.max_wait_ms).fold(0.0, f64::max),
                mean_jain: mine.iter().map(|c| c.jain).sum::<f64>() / n,
                completed: mine.len(),
            }
        })
        .collect();
    // Deterministic total order: score desc, then registry order.
    standings.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (i, st) in standings.iter_mut().enumerate() {
        st.rank = i + 1;
    }

    TournamentReport {
        scale: cfg.scale,
        seed: cfg.seed,
        scenarios: scenarios_list
            .iter()
            .map(|(_, sc)| sc.name.clone())
            .collect(),
        standings,
        partial_runs: cells.iter().filter(|c| c.partial).count(),
        cells,
        failures,
    }
}

/// Render the ASCII scorecard: ranked standings plus the per-scenario
/// composite grid.
pub fn render(r: &TournamentReport) -> String {
    let mut s = format!(
        "tournament: {} scenario(s) × {} schedulers  (scale {}, seed {})\n\n",
        r.scenarios.len(),
        Sched::ALL.len(),
        r.scale,
        r.seed
    );
    let mut t = Table::new(&[
        "rank",
        "scheduler",
        "score",
        "wins",
        "thr (ops/s)",
        "p99 delay (ms)",
        "worst wait (ms)",
        "jain",
        "runs",
    ]);
    for st in &r.standings {
        t.push(&[
            st.rank.to_string(),
            st.sched.name().to_string(),
            format!("{:.4}", st.score),
            st.wins.to_string(),
            format!("{:.1}", st.mean_throughput),
            format!("{:.3}", st.mean_p99_run_delay_ms),
            format!("{:.3}", st.worst_max_wait_ms),
            format!("{:.4}", st.mean_jain),
            format!("{}/{}", st.completed, r.scenarios.len()),
        ]);
    }
    s.push_str(&t.render());

    let mut header: Vec<&str> = vec!["scenario"];
    let names: Vec<&str> = Sched::ALL.iter().map(|x| x.name()).collect();
    header.extend(&names);
    let mut grid = Table::new(&header);
    for scen in &r.scenarios {
        let mut row = vec![scen.clone()];
        for &sched in &Sched::ALL {
            let cell = r
                .cells
                .iter()
                .find(|c| &c.scenario == scen && c.sched == sched);
            row.push(match cell {
                Some(c) if c.partial => "PARTIAL".to_string(),
                Some(c) => format!(
                    "{:.0}/s p99 {:.2}ms J{:.3}",
                    c.throughput, c.p99_run_delay_ms, c.jain
                ),
                None => "FAIL".to_string(),
            });
        }
        grid.push(&row);
    }
    s.push('\n');
    s.push_str(&grid.render());
    if !r.failures.is_empty() {
        s.push('\n');
        for f in &r.failures {
            s.push_str(&format!("FAIL {f}\n"));
        }
    }
    s
}

/// CLI entry: load the corpus, run the tournament, print the scorecard and
/// optionally dump JSON. Returns `false` on any crash, panic, spec error
/// or supervision abort.
pub fn cli(paths: &[String], cfg: &RunCfg, json: &Option<String>) -> bool {
    let corpus = match scenarios::load(paths) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let report = run(&corpus, cfg);
    print!("{}", render(&report));
    let mut ok = report.failures.is_empty() && report.partial_runs == 0;
    if let Some(p) = json {
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(p, s) {
                    eprintln!("cannot write {p}: {e}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize report for {p}: {e}");
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, sched: Sched, thr: f64, p99: f64, wait: f64, jain: f64) -> Cell {
        Cell {
            scenario: scenario.into(),
            sched,
            throughput: thr,
            p99_run_delay_ms: p99,
            max_wait_ms: wait,
            jain,
            digest_hex: "0".repeat(16),
            partial: false,
        }
    }

    #[test]
    fn composite_prefers_dominant_cell() {
        let a = cell("s", Sched::Cfs, 100.0, 1.0, 5.0, 0.99);
        let b = cell("s", Sched::Ule, 50.0, 2.0, 10.0, 0.80);
        let ca = composite(&a, 100.0, 1.0, 5.0);
        let cb = composite(&b, 100.0, 1.0, 5.0);
        assert!(ca > cb);
        assert!((ca - (1.0 + 1.0 + 1.0 + 0.99) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_is_best_not_division_by_zero() {
        let c = cell("s", Sched::Cfs, 10.0, 0.0, 0.0, 1.0);
        assert_eq!(composite(&c, 10.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn norms_are_bounded() {
        assert_eq!(norm_hi(5.0, 0.0), 1.0);
        assert!(norm_hi(200.0, 100.0) <= 1.0);
        assert_eq!(norm_lo(0.0, 1.0), 1.0);
        assert!(norm_lo(0.5, 1.0) <= 1.0);
    }
}
