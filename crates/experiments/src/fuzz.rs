//! `battle fuzz` — randomized differential stress testing under SchedSan.
//!
//! Each fuzz case derives a private seed from the base seed and the case
//! index, generates a random topology, workload mix, and fault plan from
//! it, and runs the same case under every requested scheduler with strict
//! invariant checking enabled. The workload mix is built from four
//! independently toggleable *parts* (CPU hogs, interactive sleepers, a
//! queue pipeline, a barrier/mutex/semaphore gang), which is what makes
//! failures shrinkable: when a case fails, the harness greedily drops parts
//! that are not needed to reproduce the violation and reports a one-line
//! repro command for the minimal mix.
//!
//! Every failure also produces a crash bundle under `results/crash/` (see
//! [`crate::crash`]).

use kernel::{
    Action, AppSpec, CancelToken, CheckMode, FaultPlan, Kernel, Script, SimConfig, SimError,
    ThreadSpec,
};
use simcore::{Dur, SimRng, Time};
use topology::Topology;

use crate::{crash::Crash, runner, Sched};

/// Workload part bits (the `--parts` mask).
pub const PART_HOGS: u8 = 1 << 0;
/// Interactive run/sleep loops.
pub const PART_INTERACTIVE: u8 = 1 << 1;
/// Bounded-queue producer/consumer pipeline.
pub const PART_PIPELINE: u8 = 1 << 2;
/// Barrier gang + mutex contenders + semaphore ping-pong.
pub const PART_SYNC: u8 = 1 << 3;
/// All parts enabled.
pub const PART_ALL: u8 = PART_HOGS | PART_INTERACTIVE | PART_PIPELINE | PART_SYNC;

/// Fuzzing configuration (the `battle fuzz` flags).
#[derive(Debug, Clone)]
pub struct FuzzCfg {
    /// Number of cases to generate.
    pub cases: u32,
    /// Base seed; case `i` runs with a seed mixed from `(seed, i)`.
    pub seed: u64,
    /// Schedulers to run every case under.
    pub scheds: Vec<Sched>,
    /// Inject faults (spurious wakeups, tick jitter, hotplug).
    pub faults: bool,
    /// Workload-part mask ([`PART_ALL`] by default).
    pub parts: u8,
    /// Run exactly one case with this exact seed (replay mode).
    pub case_seed: Option<u64>,
    /// Per-case timeout in seconds (`--case-timeout`). Bounds both the
    /// *simulated* run (an unfinished app at this simulated time is a
    /// genuine hang and fails the case — the old hardcoded 120 s) and the
    /// *wall clock* (a case that takes this long in real time is
    /// cooperatively cancelled and reported, without failing the
    /// campaign, since wall-clock cancellation is host-dependent).
    pub case_timeout_s: f64,
}

impl Default for FuzzCfg {
    fn default() -> Self {
        FuzzCfg {
            cases: 100,
            seed: 42,
            scheds: Sched::BOTH.to_vec(),
            faults: true,
            parts: PART_ALL,
            case_seed: None,
            case_timeout_s: 120.0,
        }
    }
}

/// One shrunk failure.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Failure {
    /// The exact per-case seed.
    pub case_seed: u64,
    /// Scheduler that violated an invariant.
    pub sched: Sched,
    /// Minimal part mask that still reproduces the failure.
    pub parts: u8,
    /// The violated invariant.
    pub error: String,
    /// Where the crash bundle was written (`None` if the write failed).
    pub bundle: Option<String>,
    /// One-line repro command.
    pub repro: String,
}

/// The full fuzzing report.
#[derive(Debug, serde::Serialize)]
pub struct FuzzReport {
    /// Cases executed (per scheduler).
    pub cases: u32,
    /// Base seed.
    pub seed: u64,
    /// Whether faults were injected.
    pub faults: bool,
    /// Shrunk failures, if any.
    pub failures: Vec<Failure>,
    /// Cases cancelled by the wall-clock deadline (reported, not failed:
    /// the abort point depends on host speed, so these are not
    /// reproducible invariant violations).
    pub cancelled: u32,
    /// Total kernel events across all runs.
    pub events: u64,
    /// Total spurious wakeups injected.
    pub spurious_wakes: u64,
    /// Total hotplug transitions injected.
    pub hotplug_events: u64,
}

/// SplitMix64-style seed derivation: decorrelates per-case streams while
/// keeping `case i of seed s` stable forever (repro lines depend on it).
fn case_seed(seed: u64, i: u32) -> u64 {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(i) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick_topo(rng: &mut SimRng) -> Topology {
    match rng.gen_below(5) {
        0 => Topology::single_core(),
        1 => Topology::flat(2),
        2 => Topology::flat(4),
        3 => Topology::core_i7_3770(),
        _ => Topology::opteron_6172(),
    }
}

fn pick_faults(rng: &mut SimRng, topo: &Topology) -> FaultPlan {
    let mut plan = FaultPlan {
        spurious_wake_period: Some(Dur::micros(rng.gen_range(500, 5_000))),
        tick_jitter: Dur::micros(rng.gen_below(300)),
        missed_tick_pct: rng.gen_below(25) as u8,
        ..FaultPlan::default()
    };
    if topo.nr_cpus() > 1 && rng.gen_bool(0.7) {
        plan.hotplug_period = Some(Dur::millis(rng.gen_range(5, 40)));
        plan.hotplug_down = Dur::millis(rng.gen_range(2, 15));
    }
    plan
}

fn dur_ms(rng: &mut SimRng, lo_us: u64, hi_us: u64) -> Dur {
    Dur::micros(rng.gen_range(lo_us, hi_us))
}

/// Generate the case's threads into `k` and queue them as one app.
///
/// Every part is finite, so a correct scheduler always finishes the app;
/// a timeout is reported as a (likely lost-wakeup) failure.
fn build_case(k: &mut Kernel, cs: u64, parts: u8) {
    let mut base = SimRng::new(cs);
    let mut threads: Vec<ThreadSpec> = Vec::new();

    if parts & PART_HOGS != 0 {
        let mut rng = base.fork(10);
        for i in 0..rng.gen_range(1, 7) {
            let total = dur_ms(&mut rng, 5_000, 30_000);
            let chunk = dur_ms(&mut rng, 1_000, 3_000);
            let nice = rng.gen_below(11) as i32 - 5;
            threads
                .push(ThreadSpec::new(format!("hog{i}"), kernel::cpu_hog(total, chunk)).nice(nice));
        }
    }

    if parts & PART_INTERACTIVE != 0 {
        let mut rng = base.fork(11);
        for i in 0..rng.gen_range(1, 5) {
            let iters = rng.gen_range(5, 16);
            let mut steps = Vec::new();
            for _ in 0..iters {
                steps.push(Action::Run(dur_ms(&mut rng, 100, 1_000)));
                steps.push(Action::Sleep(dur_ms(&mut rng, 1_000, 5_000)));
                steps.push(Action::CountOps(1));
            }
            threads.push(ThreadSpec::new(
                format!("inter{i}"),
                Box::new(Script::new(steps)),
            ));
        }
    }

    if parts & PART_PIPELINE != 0 {
        let mut rng = base.fork(12);
        let q = k.new_queue(rng.gen_range(1, 4) as usize);
        let consumers = rng.gen_range(1, 4);
        let per = rng.gen_range(5, 16);
        let total = consumers * per;
        let mut put = Vec::new();
        for v in 0..total {
            put.push(Action::Run(dur_ms(&mut rng, 100, 500)));
            put.push(Action::QueuePut(q, v));
        }
        threads.push(ThreadSpec::new("producer", Box::new(Script::new(put))));
        for i in 0..consumers {
            let mut get = Vec::new();
            for _ in 0..per {
                get.push(Action::QueueGet(q));
                get.push(Action::Run(dur_ms(&mut rng, 200, 1_000)));
                get.push(Action::CountOps(1));
            }
            threads.push(ThreadSpec::new(
                format!("consumer{i}"),
                Box::new(Script::new(get)),
            ));
        }
    }

    if parts & PART_SYNC != 0 {
        let mut rng = base.fork(13);
        // Barrier gang: every party runs the same number of rounds.
        let parties = rng.gen_range(2, 6) as usize;
        let b = k.new_barrier(parties);
        let rounds = rng.gen_range(3, 9);
        for i in 0..parties {
            let mut steps = Vec::new();
            for _ in 0..rounds {
                steps.push(Action::Run(dur_ms(&mut rng, 500, 2_000)));
                steps.push(Action::BarrierWait(b));
            }
            threads.push(ThreadSpec::new(
                format!("gang{i}"),
                Box::new(Script::new(steps)),
            ));
        }
        // Two mutex contenders.
        let m = k.new_mutex();
        for i in 0..2 {
            let mut steps = Vec::new();
            for _ in 0..rng.gen_range(5, 11) {
                steps.push(Action::MutexLock(m));
                steps.push(Action::Run(dur_ms(&mut rng, 200, 1_000)));
                steps.push(Action::MutexUnlock(m));
            }
            threads.push(ThreadSpec::new(
                format!("locker{i}"),
                Box::new(Script::new(steps)),
            ));
        }
        // Semaphore ping-pong.
        let s = k.new_sem(0);
        let k_posts = rng.gen_range(4, 10);
        let mut post = Vec::new();
        let mut wait = Vec::new();
        for _ in 0..k_posts {
            post.push(Action::Run(dur_ms(&mut rng, 100, 800)));
            post.push(Action::SemPost(s));
            wait.push(Action::SemWait(s));
            wait.push(Action::Run(dur_ms(&mut rng, 100, 800)));
        }
        threads.push(ThreadSpec::new("poster", Box::new(Script::new(post))));
        threads.push(ThreadSpec::new("waiter", Box::new(Script::new(wait))));
    }

    if threads.is_empty() {
        // Empty masks degenerate to one hog so every case does something.
        threads.push(ThreadSpec::new(
            "hog0",
            kernel::cpu_hog(Dur::millis(10), Dur::millis(1)),
        ));
    }
    k.queue_app(Time::ZERO, AppSpec::new("fuzz", threads));
}

/// Why one case did not return clean counters.
enum CaseFail {
    /// Invariant violation or kernel error: reproducible, shrinkable.
    Error { error: String, report: String },
    /// The wall-clock deadline expired mid-run. Not shrinkable (the abort
    /// point depends on host speed, not the workload).
    Cancelled,
}

/// Run one case under one scheduler. `Ok` carries the kernel's counters
/// for aggregation.
fn run_case(
    cs: u64,
    sched: Sched,
    parts: u8,
    faults: bool,
    timeout_s: f64,
    cancel: Option<&CancelToken>,
) -> Result<kernel::Counters, CaseFail> {
    let mut base = SimRng::new(cs);
    let topo = pick_topo(&mut base.fork(1));
    let mut cfg = SimConfig::with_seed(cs);
    cfg.check = CheckMode::Strict;
    cfg.trace_capacity = 256;
    if faults {
        cfg.faults = pick_faults(&mut base.fork(2), &topo);
    }
    let class = scenario::make_class(&topo, sched, cs);
    let mut k = Kernel::new(topo, cfg, class);
    if let Some(token) = cancel {
        k.set_cancel_token(token.clone());
    }
    build_case(&mut k, cs, parts);
    // Fuzz workloads are a few hundred simulated ms; the default 120 s
    // means a simulated-time timeout is a genuine hang (lost wakeup /
    // livelock), not slowness.
    let limit = Time::ZERO + Dur::secs_f64(timeout_s);
    let err = match k.try_run_until_apps_done(limit) {
        Ok(true) => return Ok(k.counters().clone()),
        Ok(false) => SimError::Invariant {
            at: k.now(),
            detail: "app not finished at the time limit (lost wakeup or livelock?)".into(),
        },
        Err(SimError::Cancelled { .. }) => return Err(CaseFail::Cancelled),
        Err(e) => e,
    };
    Err(CaseFail::Error {
        error: err.to_string(),
        report: k.crash_report(&err),
    })
}

/// Greedily drop workload parts while the failure still reproduces;
/// returns the minimal mask. Shrink runs are never wall-clock cancelled
/// (a cancelled replay says nothing about the workload).
fn shrink(cs: u64, sched: Sched, mut parts: u8, faults: bool, timeout_s: f64) -> u8 {
    loop {
        let mut shrunk = false;
        for bit in [PART_HOGS, PART_INTERACTIVE, PART_PIPELINE, PART_SYNC] {
            if parts & bit == 0 || parts == bit {
                continue;
            }
            if matches!(
                run_case(cs, sched, parts & !bit, faults, timeout_s, None),
                Err(CaseFail::Error { .. })
            ) {
                parts &= !bit;
                shrunk = true;
            }
        }
        if !shrunk {
            return parts;
        }
    }
}

fn sched_flag(scheds: &[Sched]) -> &'static str {
    match scheds {
        [one] => one.flag_name(),
        s if s == Sched::ALL => "all",
        _ => "both",
    }
}

/// Run the whole campaign. Deterministic for a given config, whatever the
/// worker-pool size.
pub fn run(cfg: &FuzzCfg) -> FuzzReport {
    let seeds: Vec<u64> = match cfg.case_seed {
        Some(cs) => vec![cs],
        None => (0..cfg.cases).map(|i| case_seed(cfg.seed, i)).collect(),
    };
    let scheds = cfg.scheds.clone();
    let faults = cfg.faults;
    let parts = cfg.parts;
    let timeout_s = cfg.case_timeout_s;
    let outcomes = runner::par_map(seeds, move |cs| {
        // One wall-clock deadline per case: slow hosts abort the case
        // cooperatively instead of wedging the campaign.
        let token = CancelToken::with_deadline(std::time::Duration::from_secs_f64(timeout_s));
        let mut events = 0u64;
        let mut spurious = 0u64;
        let mut hotplug = 0u64;
        let mut cancelled = 0u32;
        let mut failures = Vec::new();
        for &sched in &scheds {
            match run_case(cs, sched, parts, faults, timeout_s, Some(&token)) {
                Ok(c) => {
                    events += c.events;
                    spurious += c.spurious_wakes;
                    hotplug += c.hotplug_events;
                }
                Err(CaseFail::Cancelled) => {
                    eprintln!(
                        "fuzz case {cs:#x} [{}] cancelled after {timeout_s}s wall clock",
                        sched.name()
                    );
                    cancelled += 1;
                }
                Err(CaseFail::Error { error, report }) => {
                    let minimal = shrink(cs, sched, parts, faults, timeout_s);
                    let repro = format!(
                        "battle fuzz --case-seed {cs:#x} --parts {minimal} --sched {} --faults {}",
                        sched_flag(&[sched]),
                        if faults { "on" } else { "off" },
                    );
                    let crash = Crash {
                        label: format!("fuzz-{cs:016x}-{}", sched.name()),
                        error: error.clone(),
                        report,
                        replay: repro.clone(),
                    };
                    let bundle = crash.write_bundle().ok().map(|p| p.display().to_string());
                    failures.push(Failure {
                        case_seed: cs,
                        sched,
                        parts: minimal,
                        error,
                        bundle,
                        repro,
                    });
                }
            }
        }
        (events, spurious, hotplug, cancelled, failures)
    });

    let mut report = FuzzReport {
        cases: seeds_len(cfg),
        seed: cfg.seed,
        faults: cfg.faults,
        failures: Vec::new(),
        cancelled: 0,
        events: 0,
        spurious_wakes: 0,
        hotplug_events: 0,
    };
    for (e, s, h, c, f) in outcomes {
        report.events += e;
        report.spurious_wakes += s;
        report.hotplug_events += h;
        report.cancelled += c;
        report.failures.extend(f);
    }
    report
}

fn seeds_len(cfg: &FuzzCfg) -> u32 {
    if cfg.case_seed.is_some() {
        1
    } else {
        cfg.cases
    }
}

/// Render the campaign summary.
pub fn report(r: &FuzzReport) -> String {
    let mut s = format!(
        "fuzz: {} cases, seed {}, faults {} — {} events, {} spurious wakes, {} hotplugs\n",
        r.cases,
        r.seed,
        if r.faults { "on" } else { "off" },
        r.events,
        r.spurious_wakes,
        r.hotplug_events
    );
    if r.cancelled > 0 {
        s.push_str(&format!(
            "{} case run(s) hit the wall-clock deadline and were cancelled\n",
            r.cancelled
        ));
    }
    if r.failures.is_empty() {
        s.push_str("no invariant violations\n");
    } else {
        for f in &r.failures {
            s.push_str(&format!(
                "FAIL [{}] {}\n  repro: {}\n",
                f.sched.name(),
                f.error,
                f.repro
            ));
            if let Some(b) = &f.bundle {
                s.push_str(&format!("  bundle: {b}\n"));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_stable_and_spread() {
        assert_eq!(case_seed(42, 0), case_seed(42, 0));
        assert_ne!(case_seed(42, 0), case_seed(42, 1));
        assert_ne!(case_seed(42, 0), case_seed(43, 0));
    }

    #[test]
    fn small_campaign_is_clean() {
        let cfg = FuzzCfg {
            cases: 4,
            seed: 7,
            ..Default::default()
        };
        let r = run(&cfg);
        assert!(r.failures.is_empty(), "{}", report(&r));
        assert!(r.events > 0);
    }

    #[test]
    fn single_part_case_runs() {
        let cfg = FuzzCfg {
            cases: 1,
            seed: 3,
            parts: PART_PIPELINE,
            faults: false,
            ..Default::default()
        };
        let r = run(&cfg);
        assert!(r.failures.is_empty(), "{}", report(&r));
    }
}
