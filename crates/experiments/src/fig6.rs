//! Figure 6: periodic load balancing — 512 spinning threads pinned to
//! core 0 are unpinned at t = 14.5 s (§6.1).
//!
//! "On ULE, as soon as the threads are unpinned, idle cores steal threads
//! (at most one per core) (...). As the load balancer only migrates one
//! thread at a time from core 0, it takes (...) about 240 seconds to reach
//! a balanced state. CFS balances the load much faster. 0.2 seconds after
//! the unpinning, CFS has migrated more than 380 threads from core 0.
//! Surprisingly, CFS never achieves perfect load balance."

use metrics::PerCoreSeries;
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use workloads::synthetic::pinned_spinners;

use crate::{make_kernel, RunCfg, Sched};

/// One scheduler's rebalancing trace.
#[derive(Debug, serde::Serialize)]
pub struct Fig6Run {
    /// Scheduler used.
    pub sched: Sched,
    /// Threads per core over time.
    pub matrix: PerCoreSeries,
    /// Threads remaining on core 0 shortly (~0.5 s) after the unpin.
    pub on_core0_after_unpin: u32,
    /// Threads migrated off core 0 within 0.2 s of the unpin.
    pub migrated_in_200ms: u32,
    /// First time (s) after the unpin that the spread dropped to ≤ 2 and
    /// stayed there (near-perfect balance).
    pub convergence_s: Option<f64>,
    /// First time (s) after the unpin that the spread dropped to ≤ 5 and
    /// stayed there (good-enough balance).
    pub good_balance_s: Option<f64>,
    /// Final max−min spread.
    pub final_spread: u32,
    /// End-of-run observability snapshot (SchedScope).
    pub obs: crate::SchedObs,
}

/// Run under one scheduler.
pub fn run(sched: Sched, cfg: &RunCfg) -> Fig6Run {
    let topo = Topology::opteron_6172();
    let ncpu = topo.nr_cpus();
    let nthreads = ((512.0 * cfg.scale).round() as usize).max(2 * ncpu);
    let mut k = make_kernel(&topo, sched, cfg.seed);
    let app = k.queue_app(Time::ZERO, pinned_spinners(nthreads));
    let unpin_at = Time::ZERO + Dur::secs_f64(14.5 * cfg.scale.max(0.05));
    k.queue_unpin(unpin_at, app);

    // ULE needs hundreds of seconds (one migration per balancer period);
    // CFS settles (to its imperfect steady state) within seconds.
    let total_horizon = match sched {
        Sched::Ule => Dur::secs_f64(560.0 * cfg.scale + 30.0),
        _ => unpin_at.saturating_since(Time::ZERO) + Dur::secs(60),
    };
    let step = Dur::millis(100);
    let mut matrix = PerCoreSeries::new();
    let sample = |k: &kernel::Kernel| -> Vec<u32> {
        (0..ncpu as u32)
            .map(|c| k.nr_queued(CpuId(c)) as u32)
            .collect()
    };
    let mut migrated_in_200ms = 0;
    let mut on_core0_after_unpin = 0;
    let limit = Time::ZERO + total_horizon;
    while k.now() < limit {
        let next = k.now() + step;
        k.run_until(next);
        matrix.push(k.now(), sample(&k));
        if k.now() >= unpin_at + Dur::millis(200) && migrated_in_200ms == 0 {
            migrated_in_200ms = nthreads as u32 - k.nr_queued(CpuId(0)) as u32;
        }
        if k.now() >= unpin_at + Dur::millis(500) && on_core0_after_unpin == 0 {
            on_core0_after_unpin = k.nr_queued(CpuId(0)) as u32;
        }
        // Stop early once converged for a while (keeps ULE runs bounded).
        if matrix.final_spread() <= 1 && k.now() > unpin_at + Dur::secs(2) {
            break;
        }
    }
    let convergence_s = matrix
        .convergence_time(2)
        .map(|t| t - unpin_at.as_secs_f64());
    let good_balance_s = matrix
        .convergence_time(5)
        .map(|t| t - unpin_at.as_secs_f64());
    Fig6Run {
        sched,
        final_spread: matrix.final_spread(),
        convergence_s,
        good_balance_s,
        on_core0_after_unpin,
        migrated_in_200ms,
        matrix,
        obs: crate::obs_of(&k),
    }
}

/// The full figure.
#[derive(Debug, serde::Serialize)]
pub struct Fig6 {
    /// ULE panel (a).
    pub ule: Fig6Run,
    /// CFS panel (b).
    pub cfs: Fig6Run,
}

/// Run both schedulers (in parallel when the runner pool allows).
pub fn run_both(cfg: &RunCfg) -> Fig6 {
    let (ule, cfs) = crate::runner::join(|| run(Sched::Ule, cfg), || run(Sched::Cfs, cfg));
    Fig6 { ule, cfs }
}

/// Render both heatmaps and the headline numbers.
pub fn report(fig: &Fig6) -> String {
    let mut s = String::from("Figure 6(a) — threads per core over time (ULE)\n");
    s.push_str(&fig.ule.matrix.heatmap());
    s.push_str("\nFigure 6(b) — threads per core over time (CFS)\n");
    s.push_str(&fig.cfs.matrix.heatmap());
    s.push_str(&format!(
        "\nULE: {} left on core0 after idle steals; good balance at {:?}s; exact at {:?}s; final spread {}\n",
        fig.ule.on_core0_after_unpin,
        fig.ule.good_balance_s.map(|v| v.round()),
        fig.ule.convergence_s.map(|v| v.round()),
        fig.ule.final_spread
    ));
    s.push_str(&format!(
        "CFS: {} migrated within 200ms; good balance at {:?}s; exact at {:?}s; final spread {}\n",
        fig.cfs.migrated_in_200ms,
        fig.cfs.good_balance_s.map(|v| (v * 10.0).round() / 10.0),
        fig.cfs.convergence_s.map(|v| v.round()),
        fig.cfs.final_spread
    ));
    s.push_str("(paper: ULE leaves 481 on core0, ~240s to balance exactly; CFS moves >380 in 0.2s but stays imperfect)\n");
    s
}

/// Qualitative checks from §6.1.
pub fn validate(fig: &Fig6, nthreads: u32, ncpu: u32) -> Vec<String> {
    let mut bad = Vec::new();
    // ULE: idle cores steal one thread each, so right after the unpin
    // core 0 still holds ~ nthreads − (ncpu − 1).
    let expect = nthreads - (ncpu - 1);
    let got = fig.ule.on_core0_after_unpin;
    if got + 4 < expect.saturating_sub(4) || got > expect + 4 {
        bad.push(format!(
            "ULE after idle steals: core0 has {got}, expected ≈{expect}"
        ));
    }
    // CFS moves the bulk within 200 ms.
    if (fig.cfs.migrated_in_200ms as f64) < 0.5 * nthreads as f64 {
        bad.push(format!(
            "CFS should migrate most threads in 200ms, moved {}",
            fig.cfs.migrated_in_200ms
        ));
    }
    // CFS reaches a good (but imperfect) balance almost immediately...
    match fig.cfs.good_balance_s {
        Some(c) if c <= 5.0 => {}
        other => bad.push(format!("CFS should balance within seconds, got {other:?}")),
    }
    // ...but never a perfect one ("CFS never achieves perfect load
    // balance"): the NUMA imbalance tolerance leaves a residual spread.
    if fig.cfs.final_spread < 2 {
        bad.push(format!(
            "CFS balanced perfectly (spread {}), the 25% NUMA rule should prevent that",
            fig.cfs.final_spread
        ));
    }
    // ULE is orders of magnitude slower to get there than CFS...
    match (fig.cfs.good_balance_s, fig.ule.good_balance_s) {
        (Some(c), Some(u)) => {
            if !(c * 5.0 < u) {
                bad.push(format!(
                    "ULE ({u:.1}s) should be ≫ slower than CFS ({c:.1}s) to balance"
                ));
            }
        }
        (_, None) => {} // ULE may not even get there in the horizon — fine
        (None, _) => bad.push("CFS never reached a good balance".into()),
    }
    // ...but ULE's end state is better than CFS's ("ULE achieves a better
    // load balance in the long run"), if it had time to converge.
    if fig.ule.convergence_s.is_some() && fig.ule.final_spread > fig.cfs.final_spread {
        bad.push(format!(
            "ULE's long-run balance (spread {}) should beat CFS's ({})",
            fig.ule.final_spread, fig.cfs.final_spread
        ));
    }
    bad
}
