//! The §4.1 cross-check: "We also ran experiments on a smaller desktop
//! machine (8-core Intel i7-3770), reaching similar conclusions."
//!
//! This driver repeats the paper's key contrasts on the SMT desktop
//! topology (4 cores × 2 hardware threads, one shared LLC) and verifies
//! the same qualitative outcomes hold there.

use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use workloads::{suite, synthetic, sysbench::SysbenchCfg, P};

use crate::{make_kernel, pct_diff, run_entry, RunCfg, Sched};

/// Desktop cross-check results.
#[derive(Debug, serde::Serialize)]
pub struct Desktop {
    /// fibo's CPU gain (s) during a 6 s window under sysbench, per sched.
    pub fibo_gain_cfs_s: f64,
    /// ... under ULE (starved ⇒ ≈ 0).
    pub fibo_gain_ule_s: f64,
    /// Apache % diff of ULE vs CFS on one SMT thread... the whole machine.
    pub apache_diff_pct: f64,
    /// Rebalance: spread 1 s after unpinning 64 spinners, CFS.
    pub spread_after_1s_cfs: u32,
    /// ... ULE (still piled).
    pub spread_after_1s_ule: u32,
    /// NAS MG % diff (placement stability) on the desktop.
    pub mg_diff_pct: f64,
}

fn fibo_gain(sched: Sched, cfg: &RunCfg) -> f64 {
    // The desktop has 8 hardware threads; 200 sysbench workers oversubscribe
    // every one of them (the paper's >80-threads-per-core datacenter point),
    // so fibo — one batch thread — starves under ULE machine-wide.
    let topo = Topology::core_i7_3770();
    let mut k = make_kernel(&topo, sched, cfg.seed);
    let fibo = k.queue_app(Time::ZERO, synthetic::fibo(Dur::secs(120)));
    let spec = workloads::sysbench::sysbench(
        &mut k,
        SysbenchCfg {
            threads: 200,
            total_tx: ((1_500_000.0 * cfg.scale) as u64).max(20_000),
            // Lighter per-thread setup so all 200 workers are live before
            // the 4–10 s measurement window.
            init_per_thread: simcore::Dur::millis(8),
            ..Default::default()
        },
    );
    let _db = k.queue_app(Time::ZERO + Dur::millis(200), spec);
    k.run_until(Time::ZERO + Dur::secs(4));
    let tid = k.app_tasks(fibo)[0];
    let before = k.task_runtime(tid);
    k.run_until(Time::ZERO + Dur::secs(10));
    (k.task_runtime(tid) - before).as_secs_f64()
}

fn unpin_spread(sched: Sched, cfg: &RunCfg) -> u32 {
    let topo = Topology::core_i7_3770();
    let mut k = make_kernel(&topo, sched, cfg.seed);
    let app = k.queue_app(Time::ZERO, synthetic::pinned_spinners(64));
    k.queue_unpin(Time::ZERO + Dur::millis(200), app);
    k.run_until(Time::ZERO + Dur::millis(1200));
    let counts: Vec<usize> = (0..8).map(|c| k.nr_queued(CpuId(c))).collect();
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    (max - min) as u32
}

/// Run the desktop cross-check, aborting the process on error (figure
/// drivers' legacy contract; `battle` uses [`try_run`]).
pub fn run(cfg: &RunCfg) -> Desktop {
    match try_run(cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("desktop cross-check failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Run the desktop cross-check. The eight underlying simulations are
/// independent, so they go through the runner pool.
pub fn try_run(cfg: &RunCfg) -> Result<Desktop, String> {
    let topo = &Topology::core_i7_3770();
    let all = suite();
    let apache = all
        .iter()
        .find(|e| e.name == "Apache")
        .ok_or("suite is missing the Apache entry")?;
    let mg = all
        .iter()
        .find(|e| e.name == "MG")
        .ok_or("suite is missing the MG entry")?;
    let p = |e: &workloads::Entry, s| run_entry(e, s, topo, cfg, true).perf;
    let _ = P::full(8); // the machine size the entries will see
    let jobs: Vec<Box<dyn FnOnce() -> f64 + Send + '_>> = vec![
        Box::new(|| fibo_gain(Sched::Cfs, cfg)),
        Box::new(|| fibo_gain(Sched::Ule, cfg)),
        Box::new(|| p(apache, Sched::Ule)),
        Box::new(|| p(apache, Sched::Cfs)),
        Box::new(|| f64::from(unpin_spread(Sched::Cfs, cfg))),
        Box::new(|| f64::from(unpin_spread(Sched::Ule, cfg))),
        Box::new(|| p(mg, Sched::Ule)),
        Box::new(|| p(mg, Sched::Cfs)),
    ];
    let r = crate::runner::run_all(jobs);
    Ok(Desktop {
        fibo_gain_cfs_s: r[0],
        fibo_gain_ule_s: r[1],
        apache_diff_pct: pct_diff(r[2], r[3]),
        spread_after_1s_cfs: r[4] as u32,
        spread_after_1s_ule: r[5] as u32,
        mg_diff_pct: pct_diff(r[6], r[7]),
    })
}

/// Render the comparison.
pub fn report(d: &Desktop) -> String {
    let mut t =
        metrics::Table::new(&["check (i7-3770, 4c/8t)", "CFS", "ULE", "paper's conclusion"]);
    t.push(&[
        "fibo CPU gained under sysbench (6s window)".into(),
        format!("{:.2}s", d.fibo_gain_cfs_s),
        format!("{:.2}s", d.fibo_gain_ule_s),
        "ULE squeezes the batch thread harder".into(),
    ]);
    t.push(&[
        "spread 1s after unpinning 64 spinners".into(),
        format!("{}", d.spread_after_1s_cfs),
        format!("{}", d.spread_after_1s_ule),
        "CFS rebalances fast, ULE slowly".into(),
    ]);
    t.push(&[
        "apache perf diff (ULE vs CFS)".into(),
        "—".into(),
        format!("{:+.1}%", d.apache_diff_pct),
        "faster on ULE (no wakeup preemption)".into(),
    ]);
    t.push(&[
        "MG perf diff (ULE vs CFS)".into(),
        "—".into(),
        format!("{:+.1}%", d.mg_diff_pct),
        "ULE's placement at least as good".into(),
    ]);
    let mut s =
        String::from("Desktop cross-check (§4.1) — same conclusions on the small machine\n");
    s.push_str(&t.render());
    s
}

/// The §4.1 claim: "similar conclusions".
pub fn validate(d: &Desktop) -> Vec<String> {
    let mut bad = Vec::new();
    if !(d.fibo_gain_cfs_s > 0.5) {
        bad.push(format!(
            "CFS should keep fibo running: {:.2}s",
            d.fibo_gain_cfs_s
        ));
    }
    // On a multicore, MySQL's lock sleeps keep capacity free, so fibo is
    // squeezed rather than starved (the paper's own §6.4 observation); ULE
    // must still give it clearly less than CFS does.
    if !(d.fibo_gain_ule_s < d.fibo_gain_cfs_s - 0.3) {
        bad.push(format!(
            "ULE should squeeze fibo harder than CFS: {:.2}s vs {:.2}s",
            d.fibo_gain_ule_s, d.fibo_gain_cfs_s
        ));
    }
    if d.spread_after_1s_ule <= d.spread_after_1s_cfs + 10 {
        bad.push(format!(
            "rebalance contrast should hold: ULE {} vs CFS {}",
            d.spread_after_1s_ule, d.spread_after_1s_cfs
        ));
    }
    if d.apache_diff_pct < 5.0 {
        bad.push(format!(
            "apache should favour ULE: {:+.1}%",
            d.apache_diff_pct
        ));
    }
    if d.mg_diff_pct < -5.0 {
        bad.push(format!(
            "MG should not regress on ULE: {:+.1}%",
            d.mg_diff_pct
        ));
    }
    bad
}
