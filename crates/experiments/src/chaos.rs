//! `battle chaos` — the SchedGuard supervision campaign.
//!
//! Sweeps the scenario corpus under fault plans and tight budgets and
//! proves the supervision layer's contract end-to-end, in one process:
//!
//! * every job is classified (completed / budget-killed / livelocked /
//!   cancelled / panicked / crashed-with-bundle) — no job loss, whatever
//!   goes wrong inside a case;
//! * a *generously* supervised run produces a decision digest
//!   byte-identical to the unsupervised control run (guards observe, they
//!   never steer);
//! * a run killed by a tight budget still salvages a partial result;
//! * injected panics are isolated to their job, injected livelocks and
//!   runaway behaviors are detected and bundled.
//!
//! Every plan in the sweep is deterministic for a given seed — including
//! the cancellation probe, which uses a *pre-cancelled* token so the
//! abort lands on the same cancellation-poll boundary every time — so the
//! outcome table itself is reproducible and CI can pin it.

use std::collections::BTreeMap;
use std::path::PathBuf;

use kernel::{from_fn, Action, AppSpec, CancelToken, RunBudget, SimError, ThreadSpec};
use scenario::{AbortKind, EngineError, EngineOpts, Scenario, Sched};
use simcore::{Dur, SimRng, Time};
use topology::Topology;

use crate::{check_mode, crash::Crash, runner, scenarios, RunCfg};

/// Outcome class of one chaos case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum Outcome {
    /// Ran to the end; full result.
    Completed,
    /// A [`RunBudget`] limit tripped; partial result salvaged.
    BudgetKilled,
    /// The no-progress watchdog tripped; partial result salvaged.
    Livelocked,
    /// A cancel token tripped; partial result salvaged.
    Cancelled,
    /// The job panicked; siblings unaffected, bundle written.
    Panicked,
    /// A non-supervision kernel error; crash bundle written.
    Crashed,
}

impl Outcome {
    fn name(self) -> &'static str {
        match self {
            Outcome::Completed => "Completed",
            Outcome::BudgetKilled => "BudgetKilled",
            Outcome::Livelocked => "Livelocked",
            Outcome::Cancelled => "Cancelled",
            Outcome::Panicked => "Panicked",
            Outcome::Crashed => "Crashed",
        }
    }
}

/// One classified chaos case.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Case {
    /// `<scenario>-<sched>-<plan>` or `probe-<kind>`.
    pub name: String,
    /// Which plan produced it (`control`, `guarded`, `killed`,
    /// `plan<N>`, `probe`).
    pub plan: String,
    /// Classification.
    pub outcome: Outcome,
    /// Abort/violation message, or `"completed"`.
    pub detail: String,
    /// Kernel events processed (full or salvaged-partial count).
    pub events: Option<u64>,
    /// Decision digest (full or digest-so-far for partial runs).
    pub digest: Option<u64>,
    /// Crash bundle path, for panicked/crashed cases.
    pub bundle: Option<String>,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct ChaosCfg {
    /// Work-volume scale for the scenario runs.
    pub scale: f64,
    /// Base seed (drives the randomized budget plans).
    pub seed: u64,
    /// Extra randomized tight-budget plans per (scenario, sched) pair.
    pub plans: u32,
}

impl Default for ChaosCfg {
    fn default() -> Self {
        ChaosCfg {
            scale: 0.02,
            seed: 42,
            plans: 1,
        }
    }
}

/// Outcome-class histogram (fixed fields so the JSON is jq-friendly).
#[derive(Debug, Default, Clone, serde::Serialize)]
pub struct OutcomeCounts {
    /// Full results.
    pub completed: usize,
    /// Budget-tripped partials.
    pub budget_killed: usize,
    /// Watchdog-tripped partials.
    pub livelocked: usize,
    /// Cancel-token partials.
    pub cancelled: usize,
    /// Panicked jobs (isolated).
    pub panicked: usize,
    /// Kernel errors with crash bundles.
    pub crashed: usize,
}

impl OutcomeCounts {
    fn bump(&mut self, o: Outcome) {
        match o {
            Outcome::Completed => self.completed += 1,
            Outcome::BudgetKilled => self.budget_killed += 1,
            Outcome::Livelocked => self.livelocked += 1,
            Outcome::Cancelled => self.cancelled += 1,
            Outcome::Panicked => self.panicked += 1,
            Outcome::Crashed => self.crashed += 1,
        }
    }

    /// Count for one class.
    pub fn of(&self, o: Outcome) -> usize {
        match o {
            Outcome::Completed => self.completed,
            Outcome::BudgetKilled => self.budget_killed,
            Outcome::Livelocked => self.livelocked,
            Outcome::Cancelled => self.cancelled,
            Outcome::Panicked => self.panicked,
            Outcome::Crashed => self.crashed,
        }
    }
}

/// The campaign result.
#[derive(Debug, serde::Serialize)]
pub struct ChaosReport {
    /// Every classified case.
    pub cases: Vec<Case>,
    /// Outcome-class histogram.
    pub counts: OutcomeCounts,
    /// Guarded/plan runs that completed with a digest different from the
    /// unsupervised control run. Must be zero: supervision observes, it
    /// never steers.
    pub digest_mismatches: u32,
    /// Jobs that produced no classification at all. Must be zero: the
    /// whole point of the supervision layer is that nothing is lost.
    pub process_failures: u32,
    /// Cases whose classification contradicts the plan's expectation
    /// (e.g. a `killed` plan that completed). Must be empty.
    pub anomalies: Vec<String>,
}

/// Run one scenario plan and classify it.
fn run_plan(sc: &Scenario, sched: Sched, opts: &EngineOpts, name: &str, plan: &str) -> Case {
    let mut case = Case {
        name: name.to_string(),
        plan: plan.to_string(),
        outcome: Outcome::Completed,
        detail: "completed".into(),
        events: None,
        digest: None,
        bundle: None,
    };
    match scenario::run_sched(sc, sched, opts) {
        Ok(out) => {
            case.events = Some(out.run.counters.events);
            case.digest = Some(out.run.digest);
            if out.run.partial {
                case.outcome = match out.run.abort_kind {
                    Some(AbortKind::Budget) => Outcome::BudgetKilled,
                    Some(AbortKind::Livelock) => Outcome::Livelocked,
                    Some(AbortKind::Cancelled) | None => Outcome::Cancelled,
                };
                case.detail = out.run.abort.unwrap_or_else(|| "aborted".into());
            }
        }
        Err(EngineError::Spec(e)) => {
            case.outcome = Outcome::Crashed;
            case.detail = format!("spec error: {e}");
        }
        Err(EngineError::Crash(c)) => {
            case.outcome = Outcome::Crashed;
            case.detail = c.error.clone();
            let bundle = Crash {
                label: format!("chaos-{name}"),
                error: c.error,
                report: c.report,
                replay: format!("battle chaos (plan {plan})"),
            };
            case.bundle = bundle.write_bundle().ok().map(|p| p.display().to_string());
        }
    }
    case
}

fn budget_events(max_events: u64) -> RunBudget {
    RunBudget {
        max_events: Some(max_events),
        ..RunBudget::default()
    }
}

/// The deterministic failure probes: one case per abnormal class, built on
/// bare kernels so the class is guaranteed whatever the scenario corpus
/// looks like.
fn probes(seed: u64) -> Vec<Box<dyn FnOnce() -> Case + Send>> {
    let mk = |name: &str| Case {
        name: format!("probe-{name}"),
        plan: "probe".into(),
        outcome: Outcome::Completed,
        detail: "completed".into(),
        events: None,
        digest: None,
        bundle: None,
    };
    vec![
        // Panic isolation: the job dies, the campaign does not. The
        // supervised pool classifies this slot as Panicked.
        Box::new(|| -> Case { panic!("injected chaos panic") }),
        // Livelock: a zero-length sleep loop stalls simulated time
        // forever; the stall watchdog must catch it.
        Box::new(move || {
            let topo = Topology::flat(2);
            let mut k = crate::make_kernel(&topo, Sched::Cfs, seed);
            k.set_watchdog(2_000, 0);
            k.queue_app(
                Time::ZERO,
                AppSpec::new(
                    "livelock",
                    vec![ThreadSpec::new(
                        "zero-sleeper",
                        from_fn(|_| Action::Sleep(Dur::ZERO)),
                    )],
                ),
            );
            let mut case = mk("livelock");
            match k.try_run_until(Time::ZERO + Dur::secs(1)) {
                Err(e @ SimError::Livelock { .. }) => {
                    case.outcome = Outcome::Livelocked;
                    case.detail = e.to_string();
                }
                other => case.detail = format!("expected livelock, got {other:?}"),
            }
            case.events = Some(k.counters().events);
            case.digest = Some(k.decision_digest());
            case
        }),
        // Runaway behavior: an infinite zero-length Run loop never yields
        // the CPU; this is *not* a supervision abort but a kernel error,
        // so it must produce a crash bundle (the Crashed class).
        Box::new(move || {
            let topo = Topology::flat(2);
            let mut k = crate::make_kernel(&topo, Sched::Cfs, seed);
            // Watchdog off: the instant-action guard must be what fires.
            k.set_watchdog(0, 0);
            k.queue_app(
                Time::ZERO,
                AppSpec::new(
                    "runaway",
                    vec![ThreadSpec::new(
                        "spin0",
                        from_fn(|_| Action::Run(Dur::ZERO)),
                    )],
                ),
            );
            let mut case = mk("runaway");
            match k.try_run_until(Time::ZERO + Dur::secs(1)) {
                Err(e) if !e.is_supervision() => {
                    case.outcome = Outcome::Crashed;
                    case.detail = e.to_string();
                    let bundle = Crash::capture(&k, &e, "chaos-probe-runaway", "battle chaos");
                    case.bundle = bundle.write_bundle().ok().map(|p| p.display().to_string());
                }
                other => case.detail = format!("expected kernel error, got {other:?}"),
            }
            case
        }),
        // Cancellation: a pre-cancelled token trips at the first
        // cancellation poll (a fixed event count), so even this class is
        // deterministic.
        Box::new(move || {
            let topo = Topology::flat(2);
            let mut k = crate::make_kernel(&topo, Sched::Cfs, seed);
            let token = CancelToken::new();
            token.cancel();
            k.set_cancel_token(token);
            k.queue_app(
                Time::ZERO,
                AppSpec::new(
                    "busy",
                    vec![
                        ThreadSpec::new("hog0", kernel::cpu_hog(Dur::secs(60), Dur::millis(1))),
                        ThreadSpec::new("hog1", kernel::cpu_hog(Dur::secs(60), Dur::millis(1))),
                    ],
                ),
            );
            let mut case = mk("cancel");
            match k.try_run_until(Time::ZERO + Dur::secs(30)) {
                Err(e @ SimError::Cancelled { .. }) => {
                    case.outcome = Outcome::Cancelled;
                    case.detail = e.to_string();
                }
                other => case.detail = format!("expected cancellation, got {other:?}"),
            }
            case.events = Some(k.counters().events);
            case.digest = Some(k.decision_digest());
            case
        }),
    ]
}

/// Run the campaign over an in-memory corpus (the CLI loads the corpus
/// from scenario paths; tests inject theirs directly).
pub fn run(corpus: &[(PathBuf, Scenario)], cfg: &ChaosCfg) -> ChaosReport {
    let pairs: Vec<(usize, Sched)> = corpus
        .iter()
        .enumerate()
        .flat_map(|(i, (_, sc))| sc.scheds.iter().map(move |&s| (i, s)))
        .collect();

    // Stage 1: unsupervised control runs, in parallel. Their digests and
    // event counts calibrate every supervised plan below.
    let (scale, seed, check) = (cfg.scale, cfg.seed, check_mode());
    let mk_opts = move |budget: RunBudget| EngineOpts {
        scale,
        seed,
        check,
        trace_capacity: 0,
        budget,
        cancel: None,
        params: None,
    };
    let controls: Vec<Case> = runner::par_map(pairs.clone(), |(i, sched)| {
        let (_, sc) = &corpus[i];
        run_plan(
            sc,
            sched,
            &mk_opts(RunBudget::default()),
            &format!("{}-{}-control", sc.name, sched.name()),
            "control",
        )
    });

    // Stage 2: the supervised sweep — per pair, a generously guarded run
    // (digest must match control), a budget-killed run, and `plans`
    // randomized tight-budget runs — plus the failure probes. All through
    // the panic-isolating pool.
    let mut jobs: Vec<Box<dyn FnOnce() -> Case + Send>> = Vec::new();
    for (pair_idx, &(i, sched)) in pairs.iter().enumerate() {
        let (_, sc) = &corpus[i];
        let control_events = controls[pair_idx].events.unwrap_or(0);
        let name = format!("{}-{}", sc.name, sched.name());
        {
            let (name, sc) = (name.clone(), sc.clone());
            // Generous: far above the control event count, so the run
            // completes *with the guards armed*.
            let budget = budget_events(control_events.max(1).saturating_mul(16));
            jobs.push(Box::new(move || {
                run_plan(
                    &sc,
                    sched,
                    &mk_opts(budget),
                    &format!("{name}-guarded"),
                    "guarded",
                )
            }));
        }
        if control_events >= 8 {
            let (name, sc) = (name.clone(), sc.clone());
            // Tight: a quarter of the control events guarantees the
            // budget trips mid-run and a partial result is salvaged.
            let budget = budget_events((control_events / 4).max(1));
            jobs.push(Box::new(move || {
                run_plan(
                    &sc,
                    sched,
                    &mk_opts(budget),
                    &format!("{name}-killed"),
                    "killed",
                )
            }));
        }
        let mut rng = SimRng::new(cfg.seed ^ (pair_idx as u64).wrapping_mul(0x9E37_79B9));
        for p in 0..cfg.plans {
            let (name, sc) = (name.clone(), sc.clone());
            // Randomized plan: anywhere from "kills early" to "never
            // trips". Either outcome is legal; a *completed* plan run
            // must still match the control digest.
            let lo = (control_events / 8).max(1);
            let hi = control_events.saturating_mul(2).max(lo + 1);
            let budget = budget_events(rng.gen_range(lo, hi));
            jobs.push(Box::new(move || {
                run_plan(
                    &sc,
                    sched,
                    &mk_opts(budget),
                    &format!("{name}-plan{p}"),
                    &format!("plan{p}"),
                )
            }));
        }
    }
    jobs.extend(probes(cfg.seed));
    let outcomes = runner::run_all_supervised(jobs);

    // Stage 3: classify, count, and cross-check against the controls.
    let mut cases = controls;
    // Every queued job comes back as exactly one slot from the supervised
    // pool (Done or Panicked), so nothing can be lost; the report still
    // carries the count so CI pins the claim.
    let process_failures = 0u32;
    for outcome in outcomes {
        match outcome {
            runner::JobOutcome::Done(case) => cases.push(case),
            runner::JobOutcome::Panicked(msg) => {
                let bundle = Crash::from_panic("chaos-panic", &msg, "battle chaos");
                cases.push(Case {
                    name: "probe-panic".into(),
                    plan: "probe".into(),
                    outcome: Outcome::Panicked,
                    detail: msg,
                    events: None,
                    digest: None,
                    bundle: bundle.write_bundle().ok().map(|p| p.display().to_string()),
                });
            }
        }
    }
    let control_digest: BTreeMap<&str, u64> = cases
        .iter()
        .filter(|c| c.plan == "control")
        .filter_map(|c| c.digest.map(|d| (c.name.trim_end_matches("-control"), d)))
        .collect();
    let mut digest_mismatches = 0u32;
    let mut anomalies = Vec::new();
    for c in &cases {
        // Supervised runs that completed must not have perturbed the
        // schedule: their digest is the control digest, bit for bit.
        let supervised = c.plan == "guarded" || c.plan.starts_with("plan");
        if supervised && c.outcome == Outcome::Completed {
            let stem: &str = c
                .name
                .rsplit_once('-')
                .map(|(s, _)| s)
                .unwrap_or(c.name.as_str());
            if let (Some(d), Some(&ctrl)) = (c.digest, control_digest.get(stem)) {
                if d != ctrl {
                    digest_mismatches += 1;
                    anomalies.push(format!(
                        "{}: supervised digest {d:016x} != control {ctrl:016x}",
                        c.name
                    ));
                }
            }
        }
        let expect_ok = match c.plan.as_str() {
            "control" | "guarded" => c.outcome == Outcome::Completed,
            "killed" => c.outcome == Outcome::BudgetKilled,
            p if p.starts_with("plan") => {
                matches!(c.outcome, Outcome::Completed | Outcome::BudgetKilled)
            }
            // probes: any abnormal class is what was injected; a probe
            // that *completed* failed to reproduce its failure mode.
            _ => c.outcome != Outcome::Completed,
        };
        if !expect_ok {
            anomalies.push(format!(
                "{} ({}): unexpected outcome {} — {}",
                c.name,
                c.plan,
                c.outcome.name(),
                c.detail
            ));
        }
    }
    let mut counts = OutcomeCounts::default();
    for c in &cases {
        counts.bump(c.outcome);
    }
    ChaosReport {
        cases,
        counts,
        digest_mismatches,
        process_failures,
        anomalies,
    }
}

/// Render the outcome table.
pub fn report(r: &ChaosReport) -> String {
    let mut t = metrics::Table::new(&["case", "plan", "outcome", "events", "detail"]);
    for c in &r.cases {
        t.push(&[
            c.name.clone(),
            c.plan.clone(),
            c.outcome.name().to_string(),
            c.events
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
            truncate(&c.detail, 60),
        ]);
    }
    let mut s = String::from("SchedGuard chaos campaign\n");
    s.push_str(&t.render());
    s.push_str(&format!(
        "\noutcome classes: completed={} budget-killed={} livelocked={} cancelled={} \
         panicked={} crashed={}",
        r.counts.completed,
        r.counts.budget_killed,
        r.counts.livelocked,
        r.counts.cancelled,
        r.counts.panicked,
        r.counts.crashed
    ));
    s.push_str(&format!(
        "\ndigest mismatches: {}  process failures: {}\n",
        r.digest_mismatches, r.process_failures
    ));
    if r.anomalies.is_empty() {
        s.push_str("no anomalies — every job classified, all supervised digests match control\n");
    } else {
        for a in &r.anomalies {
            s.push_str(&format!("ANOMALY: {a}\n"));
        }
    }
    s
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}

/// Did the campaign prove the supervision contract?
pub fn passed(r: &ChaosReport) -> bool {
    r.anomalies.is_empty() && r.digest_mismatches == 0 && r.process_failures == 0
}

/// CLI entry for `battle chaos`: load the corpus, run the campaign,
/// print the table, optionally dump JSON. Returns `false` on anomalies.
pub fn cli(paths: &[String], cfg: &RunCfg, plans: u32, json: &Option<String>) -> bool {
    let corpus = match scenarios::load(paths) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let ccfg = ChaosCfg {
        scale: cfg.scale,
        seed: cfg.seed,
        plans,
    };
    println!(
        "chaos: {} scenario(s) at scale {} seed {} ({} random plan(s) per pair)\n",
        corpus.len(),
        ccfg.scale,
        ccfg.seed,
        ccfg.plans
    );
    let r = run(&corpus, &ccfg);
    print!("{}", report(&r));
    let mut ok = passed(&r);
    if let Some(p) = json {
        match serde_json::to_string_pretty(&r) {
            Ok(s) => {
                if let Some(dir) = std::path::Path::new(p).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(p, s) {
                    eprintln!("cannot write {p}: {e}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize chaos report: {e}");
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<(PathBuf, Scenario)> {
        let src = r#"
name = "tiny"
[topology]
preset = "flat-4"
[[phase]]
kind = "cpu-hogs"
count = { base = 6, min = 6 }
work = { base_s = 0.2, scaled = false }
[run]
horizon = { base_s = 5.0, scaled = false }
"#;
        vec![(
            PathBuf::from("inline-tiny.toml"),
            Scenario::from_toml(src).expect("tiny scenario parses"),
        )]
    }

    #[test]
    fn campaign_classifies_every_outcome_class() {
        let r = run(&tiny_corpus(), &ChaosCfg::default());
        assert!(passed(&r), "{}", report(&r));
        for class in [
            Outcome::Completed,
            Outcome::BudgetKilled,
            Outcome::Livelocked,
            Outcome::Cancelled,
            Outcome::Panicked,
            Outcome::Crashed,
        ] {
            assert!(
                r.counts.of(class) >= 1,
                "missing outcome class {}:\n{}",
                class.name(),
                report(&r)
            );
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let corpus = tiny_corpus();
        let a = run(&corpus, &ChaosCfg::default());
        let b = run(&corpus, &ChaosCfg::default());
        let sig = |r: &ChaosReport| -> Vec<(String, String, Option<u64>, Option<u64>)> {
            r.cases
                .iter()
                .map(|c| {
                    (
                        c.name.clone(),
                        c.outcome.name().to_string(),
                        c.events,
                        c.digest,
                    )
                })
                .collect()
        };
        assert_eq!(sig(&a), sig(&b));
    }
}
