//! Figure 8: the application suite on the 32-core machine (§6.3), plus the
//! two hackbench configurations.
//!
//! "The average performance difference between CFS and ULE is small: 2.75%
//! in favor of ULE. MG (...) is 73% faster on ULE than on CFS. (...)
//! Sysbench is slower on ULE due to the overhead of the ULE load balancer
//! [pickcpu scanning] (...) 13% of all CPU cycles being spent on scanning
//! cores."

use topology::Topology;

use crate::fig5::{self, SuiteComparison};
use crate::RunCfg;

/// Run the multicore suite (with per-core kernel noise, as on a real
/// machine) under both schedulers, including Hackb-800 and Hackb-10.
pub fn run(cfg: &RunCfg) -> SuiteComparison {
    let topo = Topology::opteron_6172();
    let extra = workloads::multicore_extra();
    fig5::run_on(&topo, cfg, true, &extra)
}

/// Render the bar chart.
pub fn report(cmp: &SuiteComparison) -> String {
    let mut s = fig5::chart(cmp, "Figure 8 — 32-core suite").render(28);
    s.push_str("(paper: mean +2.75% for ULE; MG ≈ +73%; sysbench slower on ULE)\n");
    s
}

/// Qualitative checks from §6.3.
pub fn validate(cmp: &SuiteComparison) -> Vec<String> {
    let mut bad = Vec::new();
    let mean = fig5::mean_diff(cmp);
    if mean.abs() > 15.0 {
        bad.push(format!("suite mean diff should be small, got {mean:.1}%"));
    }
    // MG benefits from ULE's stable one-thread-per-core placement. The
    // paper reports +73%; the simulated machine repairs CFS's misplacement
    // faster, so the advantage is smaller but must stay clearly positive.
    if let Some(d) = fig5::diff_of(cmp, "MG") {
        if d < 3.0 {
            bad.push(format!("MG should be faster on ULE, got {d:+.1}%"));
        }
    }
    // Sysbench suffers from pickcpu scan overhead on ULE (paper: ~−10%).
    // In the simulation CFS's wakeup-preemption cache penalties offset
    // part of that, so we only require the diff to stay small (see
    // EXPERIMENTS.md for the documented divergence).
    if let Some(d) = fig5::diff_of(cmp, "Sysbench") {
        if d > 4.0 {
            bad.push(format!(
                "sysbench should not be faster on ULE, got {d:+.1}%"
            ));
        }
    }
    bad
}
