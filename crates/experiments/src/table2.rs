//! Table 2: execution time of fibo, sysbench throughput and latency under
//! CFS and ULE.
//!
//! Paper values: fibo 160s/158s; sysbench 290 vs 532 tx/s; average latency
//! 441ms vs 125ms. Absolute numbers differ on the simulated machine; the
//! shape to reproduce is sysbench ≈2× faster and ≈3× lower latency on ULE
//! with fibo's total runtime nearly unchanged.

use metrics::Table;

use crate::fig1::Fig1;
use crate::{fig1, RunCfg};

/// Run the underlying Figure 1 experiment on both schedulers.
pub fn run(cfg: &RunCfg) -> Fig1 {
    fig1::run_both(cfg)
}

/// Build the table.
pub fn table(fig: &Fig1) -> Table {
    let mut t = Table::new(&["", "CFS", "ULE"]);
    t.push(&[
        "Fibo - Runtime".into(),
        format!("{:.1}s", fig.cfs.fibo_runtime_total_s),
        format!("{:.1}s", fig.ule.fibo_runtime_total_s),
    ]);
    t.push(&[
        "Sysbench - Transactions/s".into(),
        format!("{:.0}", fig.cfs.sysbench_tx_per_s),
        format!("{:.0}", fig.ule.sysbench_tx_per_s),
    ]);
    t.push(&[
        "Sysbench - Avg. latency".into(),
        format!("{:.0}ms", fig.cfs.sysbench_avg_latency_ms),
        format!("{:.0}ms", fig.ule.sysbench_avg_latency_ms),
    ]);
    t
}

/// Render the table with the paper's reference values alongside.
pub fn report(fig: &Fig1) -> String {
    let mut s = String::from("Table 2 — fibo & sysbench under CFS and ULE\n");
    s.push_str(&table(fig).render());
    s.push_str("(paper: 160s/158s, 290/532 tx/s, 441ms/125ms)\n");
    s
}
