//! Figure 5: performance of ULE relative to CFS over the whole application
//! suite on a **single core** (§5.3).
//!
//! "Overall, the scheduler has little influence on most workloads. (...)
//! The average performance difference is 1.5%, in favor of ULE. Still,
//! scimark is 36% slower on ULE than CFS, and apache is 40% faster on ULE
//! than CFS."

use metrics::BarChart;
use topology::Topology;
use workloads::suite;

use crate::{pct_diff, run_entry, runner, PerfResult, RunCfg, Sched};

/// Result of the per-application comparison.
#[derive(Debug, serde::Serialize)]
pub struct SuiteComparison {
    /// Application name per row.
    pub rows: Vec<SuiteRow>,
}

/// One application's result pair.
#[derive(Debug, serde::Serialize)]
pub struct SuiteRow {
    /// Application name.
    pub name: String,
    /// CFS result.
    pub cfs: PerfResult,
    /// ULE result.
    pub ule: PerfResult,
    /// `(ULE − CFS) / CFS × 100`.
    pub diff_pct: f64,
}

/// Run the full single-core suite under both schedulers.
pub fn run(cfg: &RunCfg) -> SuiteComparison {
    run_on(&Topology::single_core(), cfg, false, &[])
}

/// Run the suite on an arbitrary machine (used by Figure 8), optionally
/// with kernel noise and extra entries.
pub fn run_on(
    topo: &Topology,
    cfg: &RunCfg,
    with_noise: bool,
    extra: &[workloads::Entry],
) -> SuiteComparison {
    let all = suite();
    // One job per (application, scheduler) pair; the runner returns
    // results in submission order, so the rows of the table are identical
    // whatever the thread count.
    let sims: Vec<(&workloads::Entry, Sched)> = all
        .iter()
        .chain(extra.iter())
        .flat_map(|e| Sched::BOTH.into_iter().map(move |s| (e, s)))
        .collect();
    let results = runner::par_map(sims, |(entry, sched)| {
        run_entry(entry, sched, topo, cfg, with_noise)
    });
    let rows = results
        .chunks_exact(2)
        .map(|pair| {
            let (cfs, ule) = (pair[0].clone(), pair[1].clone());
            let diff = pct_diff(ule.perf, cfs.perf);
            SuiteRow {
                name: cfs.name.clone(),
                cfs,
                ule,
                diff_pct: diff,
            }
        })
        .collect();
    SuiteComparison { rows }
}

/// The figure's bar chart.
pub fn chart(cmp: &SuiteComparison, title: &str) -> BarChart {
    let mut c = BarChart::new(title, "% perf diff of ULE w.r.t. CFS (+ = ULE faster)");
    for r in &cmp.rows {
        c.push(r.name.clone(), r.diff_pct);
    }
    c
}

/// Render the chart.
pub fn report(cmp: &SuiteComparison) -> String {
    let mut s = chart(cmp, "Figure 5 — single-core suite").render(28);
    s.push_str("(paper: mean +1.5% for ULE; scimark ≈ −36%, apache ≈ +40%)\n");
    s
}

/// Mean % difference across the suite.
pub fn mean_diff(cmp: &SuiteComparison) -> f64 {
    if cmp.rows.is_empty() {
        return 0.0;
    }
    cmp.rows.iter().map(|r| r.diff_pct).sum::<f64>() / cmp.rows.len() as f64
}

/// Fetch one application's diff by name.
pub fn diff_of(cmp: &SuiteComparison, name: &str) -> Option<f64> {
    cmp.rows.iter().find(|r| r.name == name).map(|r| r.diff_pct)
}

/// Qualitative checks from §5.3 (single-core shape).
pub fn validate(cmp: &SuiteComparison) -> Vec<String> {
    let mut bad = Vec::new();
    let mean = mean_diff(cmp);
    if mean.abs() > 12.0 {
        bad.push(format!("suite mean diff should be small, got {mean:.1}%"));
    }
    // scimark markedly slower on ULE (JVM service threads get priority).
    let scimarks: Vec<f64> = cmp
        .rows
        .iter()
        .filter(|r| r.name.starts_with("scimark"))
        .map(|r| r.diff_pct)
        .collect();
    if let Some(worst) = scimarks
        .iter()
        .cloned()
        .fold(None::<f64>, |a, v| Some(a.map_or(v, |x| x.min(v))))
    {
        if worst > -10.0 {
            bad.push(format!(
                "scimark should be much slower on ULE, worst {worst:.1}%"
            ));
        }
    }
    // apache markedly faster on ULE (no wakeup preemption of ab).
    if let Some(d) = diff_of(cmp, "Apache") {
        if d < 10.0 {
            bad.push(format!("apache should be much faster on ULE, got {d:.1}%"));
        }
    }
    bad
}
