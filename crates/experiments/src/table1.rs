//! Table 1: the Linux scheduler API and its FreeBSD equivalents — rendered
//! from the live [`sched_api::Scheduler`] trait so the mapping in the docs
//! and the mapping in the code cannot drift apart.

use metrics::Table;

/// The API mapping rows: (Linux, FreeBSD equivalent, usage).
pub const ROWS: [(&str, &str, &str); 7] = [
    (
        "enqueue_task",
        "sched_add (new) / sched_wakeup (woken)",
        "Enqueue a thread in a runqueue",
    ),
    (
        "dequeue_task",
        "sched_rem",
        "Remove a thread from a runqueue",
    ),
    (
        "yield_task",
        "sched_relinquish",
        "Yield the CPU back to the scheduler",
    ),
    (
        "pick_next_task",
        "sched_choose",
        "Select the next task to be scheduled",
    ),
    (
        "put_prev_task",
        "sched_switch",
        "Update statistics about the task that just ran",
    ),
    (
        "select_task_rq",
        "sched_pickcpu",
        "Choose the CPU on which a new (or waking up) thread should be placed",
    ),
    (
        "task_tick / balance hooks",
        "sched_clock / sched_balance / tdq_idled",
        "Periodic accounting and load balancing (beyond Table 1)",
    ),
];

/// Build the table.
pub fn table() -> Table {
    let mut t = Table::new(&["Linux", "FreeBSD equivalent", "Usage"]);
    for (l, f, u) in ROWS {
        t.push_strs(&[l, f, u]);
    }
    t
}

/// Render with the implementation cross-check.
pub fn report() -> String {
    let mut s = String::from("Table 1 — Linux scheduler API and FreeBSD equivalents\n");
    s.push_str(&table().render());
    s.push_str("\nBoth `cfs::Cfs` and `ule::Ule` implement exactly this interface\n(`sched_api::Scheduler`); the simulated kernel is scheduler-agnostic.\n");
    s
}

#[cfg(test)]
mod tests {
    /// The mapping rows must correspond to real trait methods.
    #[test]
    fn rows_match_trait_methods() {
        // A compile-time-ish check: referencing the methods ensures the
        // names exist on the trait.
        fn _check<S: sched_api::Scheduler>(s: &mut S) {
            let _ = S::enqueue_task;
            let _ = S::dequeue_task;
            let _ = S::yield_task;
            let _ = S::pick_next_task;
            let _ = S::put_prev_task;
            let _ = S::select_task_rq;
            let _ = S::task_tick;
            let _ = S::balance_tick;
            let _ = S::idle_balance;
            let _ = s;
        }
        let rows = super::ROWS;
        assert_eq!(rows.len(), 7);
    }
}
