//! `battle run` — execute declarative scenario files.
//!
//! Takes any mix of `.toml`/`.json` files and directories (a directory
//! expands to its sorted `*.toml` files), runs each scenario under its
//! requested schedulers through [`runner::par_map`], evaluates the
//! scenario's assertions, and reports one line per run plus any
//! violations. With `--trace`, runs go sequentially and each scenario
//! exports a combined Chrome-trace file (one group per scheduler) next to
//! the SchedScope figures.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use kernel::{CancelToken, CheckMode};
use scenario::{EngineError, EngineOpts, Scenario, ScenarioRun, Sched};

use crate::scope::{Analyzer, ChromeTrace, BUFFERED_CAPACITY};
use crate::{check_mode, crash, runner, RunCfg};

/// Outcome of one scenario file: its runs and any assertion failures.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunReport {
    /// Scenario name (from the file).
    pub scenario: String,
    /// Path the scenario was loaded from.
    pub path: String,
    /// One entry per scheduler run, in requested order. A scheduler whose
    /// run crashed is missing here and reported in `failures`.
    pub runs: Vec<ScenarioRun>,
    /// Violated assertions and crash notices; empty means pass.
    pub failures: Vec<String>,
}

impl RunReport {
    /// Did every run finish and every assertion hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Expand CLI arguments into (path, parsed scenario) pairs. Directories
/// expand to their sorted `*.toml` files; `.json` files parse as the JSON
/// form of the same schema.
pub fn load(paths: &[String]) -> Result<Vec<(PathBuf, Scenario)>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(&path)
                .map_err(|e| format!("{p}: {e}"))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(format!("{p}: no .toml scenario files in directory"));
            }
            files.extend(entries);
        } else {
            files.push(path);
        }
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let src = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let is_json = path.extension().is_some_and(|x| x == "json");
        let sc = if is_json {
            Scenario::from_json(&src)
        } else {
            Scenario::from_toml(&src)
        }
        .map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, sc));
    }
    Ok(out)
}

fn opts_for(cfg: &RunCfg, cancel: Option<&CancelToken>) -> EngineOpts {
    EngineOpts {
        scale: cfg.scale,
        seed: cfg.seed,
        check: check_mode(),
        trace_capacity: 0,
        cancel: cancel.cloned(),
        ..EngineOpts::default()
    }
}

/// Failure lines for supervised aborts: a run that was budget-killed,
/// livelocked or cancelled still salvaged a partial result (it appears in
/// `runs` with `partial: true`), but the scenario as a whole did not
/// complete, so the report must fail.
fn partial_failures(runs: &[ScenarioRun]) -> Vec<String> {
    runs.iter()
        .filter(|r| r.partial)
        .map(|r| {
            format!(
                "[{}] partial: {}",
                r.sched.name(),
                r.abort.as_deref().unwrap_or("aborted by supervision")
            )
        })
        .collect()
}

fn crash_failure(path: &Path, sc: &Scenario, cfg: &RunCfg, c: &scenario::EngineCrash) -> String {
    let bundle = crash::Crash {
        label: format!("{}-{}", sc.name, c.sched.name()),
        error: c.error.clone(),
        report: c.report.clone(),
        replay: format!(
            "battle run {} --seed {} --scale {} --check strict",
            path.display(),
            cfg.seed,
            cfg.scale
        ),
    };
    let written = match bundle.write_bundle() {
        Ok(p) => format!(" (bundle: {})", p.display()),
        Err(e) => format!(" (bundle write failed: {e})"),
    };
    format!("[{}] crash: {}{}", c.sched.name(), c.error, written)
}

/// Run every loaded scenario. Parallel across (scenario, scheduler) jobs
/// unless `trace_dir` is set, in which case runs go sequentially and each
/// scenario writes `<trace_dir>/<stem>.trace.json`.
///
/// `timeout_s` arms one shared wall-clock deadline for the whole batch:
/// when it expires every in-flight kernel aborts at its next cancellation
/// poll, salvages a partial result, and the report fails. A panicking job
/// (impossible in a healthy build, but chaos tests inject them) is
/// isolated: siblings finish, the panic becomes a failure line plus a
/// crash bundle.
pub fn run_all(
    scenarios: &[(PathBuf, Scenario)],
    cfg: &RunCfg,
    sched_override: Option<Sched>,
    trace_dir: Option<&Path>,
    timeout_s: Option<f64>,
) -> Vec<RunReport> {
    let cancel =
        timeout_s.map(|s| CancelToken::with_deadline(std::time::Duration::from_secs_f64(s)));
    let scheds_of = |sc: &Scenario| -> Vec<Sched> {
        match sched_override {
            Some(s) => vec![s],
            None => sc.scheds.clone(),
        }
    };
    if let Some(dir) = trace_dir {
        return scenarios
            .iter()
            .map(|(path, sc)| run_traced(path, sc, cfg, &scheds_of(sc), dir, cancel.as_ref()))
            .collect();
    }
    let jobs: Vec<(usize, Sched)> = scenarios
        .iter()
        .enumerate()
        .flat_map(|(i, (_, sc))| scheds_of(sc).into_iter().map(move |s| (i, s)))
        .collect();
    let cancel_ref = cancel.as_ref();
    let outcomes = runner::par_map_supervised(jobs.clone(), |(i, sched)| {
        let (path, sc) = &scenarios[i];
        scenario::run_sched(sc, sched, &opts_for(cfg, cancel_ref))
            .map(|o| o.run)
            .map_err(|e| match e {
                EngineError::Spec(s) => format!("[{}] {s}", sched.name()),
                EngineError::Crash(c) => crash_failure(path, sc, cfg, &c),
            })
    });
    let mut reports: Vec<RunReport> = scenarios
        .iter()
        .map(|(path, sc)| RunReport {
            scenario: sc.name.clone(),
            path: path.display().to_string(),
            runs: Vec::new(),
            failures: Vec::new(),
        })
        .collect();
    for (&(i, sched), outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            runner::JobOutcome::Done(Ok(run)) => reports[i].runs.push(run),
            runner::JobOutcome::Done(Err(msg)) => reports[i].failures.push(msg),
            runner::JobOutcome::Panicked(msg) => {
                let (path, sc) = &scenarios[i];
                let bundle = crash::Crash::from_panic(
                    &format!("{}-{}", sc.name, sched.name()),
                    &msg,
                    &format!(
                        "battle run {} --seed {} --scale {} --check strict",
                        path.display(),
                        cfg.seed,
                        cfg.scale
                    ),
                );
                let written = match bundle.write_bundle() {
                    Ok(p) => format!(" (bundle: {})", p.display()),
                    Err(e) => format!(" (bundle write failed: {e})"),
                };
                reports[i]
                    .failures
                    .push(format!("[{}] panic: {msg}{written}", sched.name()));
            }
        }
    }
    for (report, (_, sc)) in reports.iter_mut().zip(scenarios) {
        let partial = partial_failures(&report.runs);
        report.failures.extend(partial);
        report.failures.extend(scenario::failures(sc, &report.runs));
    }
    reports
}

fn run_traced(
    path: &Path,
    sc: &Scenario,
    cfg: &RunCfg,
    scheds: &[Sched],
    dir: &Path,
    cancel: Option<&CancelToken>,
) -> RunReport {
    let mut report = RunReport {
        scenario: sc.name.clone(),
        path: path.display().to_string(),
        runs: Vec::new(),
        failures: Vec::new(),
    };
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| sc.name.clone());
    let out = dir.join(format!("{stem}.trace.json"));
    let trace: Option<(PathBuf, _)> =
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::File::create(&out)) {
            Ok(f) => Some((
                out,
                Rc::new(RefCell::new(ChromeTrace::new(std::io::BufWriter::new(f)))),
            )),
            Err(e) => {
                report.failures.push(format!("trace export disabled: {e}"));
                None
            }
        };
    for (i, &sched) in scheds.iter().enumerate() {
        let mut opts = opts_for(cfg, cancel);
        if trace.is_some() {
            opts.trace_capacity = BUFFERED_CAPACITY;
        }
        match scenario::run_sched(sc, sched, &opts) {
            Ok(out) => {
                if let Some((_, writer)) = &trace {
                    let k = &out.kernel;
                    let mut w = writer.borrow_mut();
                    let mut analyzer = Analyzer::default();
                    w.begin_group(i as u32 + 1, sched.name(), k.topology().nr_cpus());
                    for ev in k.trace().iter() {
                        w.event(ev, k.tasks());
                        analyzer.event(ev, k.tasks());
                    }
                    w.end_group(k.now());
                }
                report.runs.push(out.run);
            }
            Err(EngineError::Spec(e)) => {
                report.failures.push(format!("[{}] {e}", sched.name()));
            }
            Err(EngineError::Crash(c)) => {
                report.failures.push(crash_failure(path, sc, cfg, &c));
            }
        }
    }
    if let Some((out, writer)) = trace {
        match Rc::try_unwrap(writer) {
            Ok(w) => match w.into_inner().finish() {
                Ok(events) => println!(
                    "  trace: {} ({events} events) — open in https://ui.perfetto.dev",
                    out.display()
                ),
                Err(e) => report.failures.push(format!("trace export failed: {e}")),
            },
            Err(_) => report
                .failures
                .push("trace writer still shared".to_string()),
        }
    }
    let partial = partial_failures(&report.runs);
    report.failures.extend(partial);
    report.failures.extend(scenario::failures(sc, &report.runs));
    report
}

/// Render one report for the terminal.
pub fn render(report: &RunReport) -> String {
    let mut s = format!("{} ({})\n", report.scenario, report.path);
    for r in &report.runs {
        let apps_done: usize = r.apps.iter().filter(|a| a.done).count();
        s.push_str(&format!(
            "  [{}]{} digest {}  end {:.3}s  apps {}/{} done  ctx {}  migr {}  run-delay p99 {:.3}ms\n",
            r.sched.name(),
            if r.partial { " PARTIAL" } else { "" },
            r.digest_hex,
            r.end_s,
            apps_done,
            r.apps.len(),
            r.counters.ctx_switches,
            r.counters.migrations,
            r.run_delay.p99_ms,
        ));
    }
    if report.failures.is_empty() {
        s.push_str("  PASS\n");
    } else {
        for f in &report.failures {
            s.push_str(&format!("  FAIL {f}\n"));
        }
    }
    s
}

/// CLI entry: load, run, print and JSON-dump. Returns `false` if any
/// scenario failed (parse error, crash or assertion).
pub fn cli(
    paths: &[String],
    cfg: &RunCfg,
    sched_override: Option<Sched>,
    trace: bool,
    json: &Option<String>,
    timeout_s: Option<f64>,
) -> bool {
    let scenarios = match load(paths) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return false;
        }
    };
    let strict = check_mode() == CheckMode::Strict;
    println!(
        "running {} scenario(s) at scale {} seed {}{}\n",
        scenarios.len(),
        cfg.scale,
        cfg.seed,
        if strict { " [strict]" } else { "" }
    );
    let trace_dir = trace.then(|| PathBuf::from("traces"));
    let reports = run_all(
        &scenarios,
        cfg,
        sched_override,
        trace_dir.as_deref(),
        timeout_s,
    );
    for report in &reports {
        print!("{}", render(report));
    }
    let failed: usize = reports.iter().filter(|r| !r.passed()).count();
    println!(
        "\n{}/{} scenarios passed",
        reports.len() - failed,
        reports.len()
    );
    let mut ok = failed == 0;
    if let Some(p) = json {
        match serde_json::to_string_pretty(&reports) {
            Ok(s) => {
                if let Err(e) = std::fs::write(p, s) {
                    eprintln!("cannot write {p}: {e}");
                    ok = false;
                }
            }
            Err(e) => {
                eprintln!("cannot serialize report for {p}: {e}");
                ok = false;
            }
        }
    }
    ok
}
