//! Figure 2: interactivity penalty of fibo and the sysbench threads over
//! time (ULE run of the Figure 1 experiment).
//!
//! "Both applications start out as interactive (penalty of 0). The penalty
//! of fibo quickly rises to the maximum value (...). Sysbench threads, in
//! contrast, remain interactive during their entire execution (penalty
//! below the 30 limit)."

use metrics::TimeSeries;

use crate::fig1::Fig1Run;
use crate::{fig1, RunCfg, Sched};

/// Run the underlying experiment on ULE and return it (penalty series
/// filled).
pub fn run(cfg: &RunCfg) -> Fig1Run {
    fig1::run(Sched::Ule, cfg)
}

/// Render the penalty chart.
pub fn report(ule: &Fig1Run) -> String {
    let mut s = String::from("Figure 2 — interactivity penalty over time (ULE)\n");
    s.push_str(&TimeSeries::ascii_chart(
        &[&ule.fibo_penalty, &ule.sysbench_penalty],
        72,
        12,
    ));
    s.push_str("(interactivity threshold: 30)\n");
    s
}

/// Qualitative checks: fibo's penalty maxes out; sysbench stays below 30.
pub fn validate(ule: &Fig1Run) -> Vec<String> {
    let mut bad = Vec::new();
    let fibo_late = ule
        .fibo_penalty
        .points
        .iter()
        .rev()
        .take(3)
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    if fibo_late < 90.0 {
        bad.push(format!("fibo penalty should max out, got {fibo_late}"));
    }
    // Sysbench mean penalty stays below the threshold while it runs.
    let done = ule.sysbench_done_s.unwrap_or(f64::MAX);
    for &(t, v) in &ule.sysbench_penalty.points {
        // Skip the ramp-up right after launch and the drain phase.
        if t > 0.3 * done && t < 0.9 * done && v >= 30.0 {
            bad.push(format!("sysbench penalty {v:.0} ≥ 30 at t={t:.0}s"));
            break;
        }
    }
    bad
}
