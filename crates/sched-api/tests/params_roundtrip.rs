//! Property coverage for the `battle tune` parameter-space layer:
//! encode/decode round-trips, bound clamping at both edges, and log-scale
//! duration mapping, over randomized dimension shapes and coordinates.

use proptest::prelude::*;
use sched_api::params::{Dim, ParamSpace, ParamVector};
use sched_api::scx::VtimeParams;
use simcore::Dur;

/// A zoo of dimension shapes covering every scale kind.
fn zoo() -> Vec<Dim> {
    vec![
        Dim::linear("lin", -10.0, 10.0, 0.0),
        Dim::linear("lin-offset", 3.0, 4.0, 3.25),
        Dim::log("log", 1e-3, 1e3, 1.0),
        Dim::integer("int", 0, 100, 50),
        Dim::integer("int-narrow", 1, 2, 1),
        Dim::duration("dur-us", Dur::micros(1), Dur::micros(900), Dur::micros(30)),
        Dim::duration("dur-wide", Dur::micros(50), Dur::secs(10), Dur::millis(48)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// from_units → to_units → from_units is the identity: the quantized
    /// raw vector is a fixed point of the unit round-trip, whatever
    /// coordinates the search proposes.
    #[test]
    fn unit_roundtrip_is_identity(
        units in prop::collection::vec(0.0f64..=1.0, 7..8),
    ) {
        let dims = zoo();
        let v = ParamVector::from_units(&units, &dims);
        let back = ParamVector::from_units(&v.to_units(&dims), &dims);
        prop_assert_eq!(&back, &v);
        // Quantization is idempotent on decoded vectors.
        prop_assert_eq!(v.quantized(&dims), v);
    }

    /// Arbitrary (unquantized, possibly wild) raw values decode into
    /// bounds, and the decode is stable under a second pass.
    #[test]
    fn arbitrary_raw_values_clamp_into_bounds(
        raws in prop::collection::vec(-1e12f64..1e12, 7..8),
    ) {
        let dims = zoo();
        let v = ParamVector(raws).quantized(&dims);
        for (i, d) in dims.iter().enumerate() {
            prop_assert!(v.0[i] >= d.lo && v.0[i] <= d.hi,
                "{} = {} outside [{}, {}]", d.name, v.0[i], d.lo, d.hi);
            if d.scale.discrete() {
                prop_assert_eq!(v.0[i], v.0[i].round());
            }
        }
        prop_assert_eq!(v.quantized(&dims), v.clone());
    }

    /// Log-scale duration dimensions: monotone in the unit coordinate and
    /// exact to the nanosecond after decode.
    #[test]
    fn log_duration_monotone_and_integral(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let d = Dim::duration("w", Dur::micros(50), Dur::secs(10), Dur::millis(48));
        let (lo_u, hi_u) = if a <= b { (a, b) } else { (b, a) };
        let (x, y) = (d.from_unit(lo_u), d.from_unit(hi_u));
        prop_assert!(x <= y, "from_unit not monotone: {x} > {y}");
        prop_assert_eq!(x, x.round());
        prop_assert_eq!(y, y.round());
    }

    /// A concrete ParamSpace (scx-vtime) round-trips through its vector
    /// for any in-bounds point: vector → params → vector identity.
    #[test]
    fn vtime_space_roundtrip(units in prop::collection::vec(0.0f64..=1.0, 2..3)) {
        let dims = VtimeParams::dims();
        let v = ParamVector::from_units(&units, &dims);
        let p = VtimeParams::from_vector(&v);
        prop_assert_eq!(p.to_vector(), v);
    }
}

#[test]
fn vtime_default_matches_stock_policy() {
    let p = VtimeParams::default();
    assert_eq!(p.slice, Dur::millis(4));
    assert_eq!(p.floor_slices, 1);
    let dims = VtimeParams::dims();
    assert_eq!(p.to_vector(), ParamVector::defaults(&dims));
}
