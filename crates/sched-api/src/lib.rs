//! The scheduling-class API shared by CFS and ULE.
//!
//! The Linux kernel lets multiple scheduling classes coexist behind a single
//! function-pointer interface; the paper's Table 1 lists the functions a
//! class must implement and their FreeBSD equivalents. This crate defines
//! that interface as the [`Scheduler`] trait (each method's documentation
//! reproduces the Table 1 mapping), together with the task model
//! ([`task::Task`], [`task::TaskTable`]), Linux's nice→weight table
//! ([`weights`]), and the introspection types the experiments use to sample
//! scheduler-internal state (vruntime, interactivity penalty, ...).
//!
//! The simulated kernel (`kernel` crate) is generic over `dyn Scheduler`,
//! exactly like Linux's core scheduler is generic over its classes — that is
//! what makes the paper's "same kernel, different scheduler" methodology
//! reproducible here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ids;
pub mod params;
pub mod sched;
pub mod scx;
pub mod task;
pub mod weights;

pub use ids::{GroupId, Tid};
pub use params::{Dim, DimScale, ParamSpace, ParamVector};
pub use sched::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot, WakeKind,
};
pub use task::{Task, TaskState, TaskTable};
