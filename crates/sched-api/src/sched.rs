//! The scheduling-class trait — the paper's Table 1 as a Rust interface.
//!
//! | Linux              | FreeBSD equivalent                         | Trait method        |
//! |--------------------|--------------------------------------------|---------------------|
//! | `enqueue_task`     | `sched_add` (new) / `sched_wakeup` (woken) | [`Scheduler::enqueue_task`] |
//! | `dequeue_task`     | `sched_rem`                                | [`Scheduler::dequeue_task`] |
//! | `yield_task`       | `sched_relinquish`                         | [`Scheduler::yield_task`]   |
//! | `pick_next_task`   | `sched_choose`                             | [`Scheduler::pick_next_task`] |
//! | `put_prev_task`    | `sched_switch`                             | [`Scheduler::put_prev_task`]  |
//! | `select_task_rq`   | `sched_pickcpu`                            | [`Scheduler::select_task_rq`] |
//!
//! Linux distinguishes "new" from "woken-up" enqueues with a flag where
//! FreeBSD has two functions; [`EnqueueKind`] carries that flag, exactly the
//! workaround §3 of the paper describes.
//!
//! Beyond Table 1 the trait exposes the hooks the core kernel calls on every
//! class: the scheduler tick (`task_tick`), fork/exit notification
//! (`task_fork`/`task_dead`, carrying ULE's interactivity inheritance), and
//! the balancing entry points (`balance_tick` for periodic balancing,
//! `idle_balance` for newidle/idle-steal).

use simcore::Time;
use topology::CpuId;

use crate::ids::Tid;
use crate::task::TaskTable;

/// Why a CPU is being selected for a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeKind {
    /// The task was just forked (`sched_add` path).
    New,
    /// The task is waking from sleep (`sched_wakeup` path). Carries the
    /// waking task so placement heuristics can inspect the waker
    /// (CFS's wake-affine/wake-wide logic).
    Wakeup {
        /// Task that issued the wakeup, if any (timer wakeups have none).
        waker: Option<Tid>,
    },
}

/// Why a task is being enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueKind {
    /// Newly created task (FreeBSD `sched_add`).
    New,
    /// Task waking up from voluntary sleep (FreeBSD `sched_wakeup`).
    Wakeup,
    /// Task being moved by the load balancer.
    Migrate,
    /// Task being put back after running (timeslice round-robin, yield).
    Requeue,
}

/// Why a task is being dequeued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueKind {
    /// Going to sleep voluntarily.
    Sleep,
    /// Being moved by the load balancer.
    Migrate,
    /// Exiting.
    Dead,
}

/// Whether the currently running task on the affected CPU should be
/// preempted as a result of a scheduler operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preempt {
    /// Keep running the current task.
    No,
    /// Reschedule the CPU as soon as possible, for the given reason. The
    /// cause is observability metadata only (counters, trace attribution);
    /// the kernel reacts identically to every cause.
    Yes(PreemptCause),
}

/// Why a scheduling class asked for a preemption. The paper's headline
/// behavioural difference — CFS preempts on wakeup, ULE makes timeshare
/// wakeups wait for the slice to expire (§2, Fig 5 apache analysis) — is
/// directly visible in which causes each scheduler ever emits. SchedScope
/// aggregates these per (preemptor, victim) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptCause {
    /// A waking task beat the running one (CFS `check_preempt_wakeup`'s
    /// vruntime + wakeup-granularity test).
    Wakeup,
    /// A kernel thread was enqueued (ULE: the only wakeup preemption
    /// allowed when full preemption is disabled).
    KernelThread,
    /// The running task's timeslice expired on a tick.
    SliceExpired,
    /// A tick-time fairness check fired (CFS `check_preempt_tick`: curr's
    /// vruntime ran too far ahead of the leftmost waiter).
    Fairness,
}

impl PreemptCause {
    /// Stable lowercase label for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PreemptCause::Wakeup => "wakeup",
            PreemptCause::KernelThread => "kernel-thread",
            PreemptCause::SliceExpired => "slice-expired",
            PreemptCause::Fairness => "fairness",
        }
    }
}

/// Out-parameters of [`Scheduler::select_task_rq`] used to charge the waking
/// CPU for placement work. The paper measures ULE spending up to 13 % of
/// cycles scanning cores on sysbench wakeups (§6.3); the simulated kernel
/// converts `cpus_scanned` into time charged to the waker's CPU.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectStats {
    /// Number of CPUs examined during placement.
    pub cpus_scanned: u32,
}

/// A point-in-time view of scheduler-internal per-task state, for the
/// figures that plot vruntime/penalty. Fields are `None` when the concept
/// does not exist in the active scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TaskSnapshot {
    /// CFS virtual runtime, in nanoseconds.
    pub vruntime_ns: Option<u64>,
    /// CFS per-entity load average (PELT-style, 0..=weight).
    pub load: Option<u64>,
    /// ULE interactivity penalty, 0..=100 (Figure 2/4).
    pub ule_penalty: Option<u32>,
    /// ULE score = penalty + nice contribution.
    pub ule_score: Option<i32>,
    /// ULE classification: `true` if on the interactive runqueue.
    pub interactive: Option<bool>,
    /// Effective priority in the scheduler's own scale.
    pub prio: Option<i32>,
    /// Current timeslice length, if the scheduler uses fixed slices.
    pub timeslice_ns: Option<u64>,
}

/// A scheduling class. One instance manages the runqueues of *all* CPUs
/// (as the per-CPU data is owned by the class), mirroring Linux where the
/// class's per-CPU state hangs off each `struct rq`.
///
/// Invariants the kernel relies on:
///
/// * A task is in at most one runqueue at any time.
/// * `pick_next_task` removes the picked task from the queue structure;
///   `put_prev_task` reinserts it if it is still runnable. (The "current
///   stays in the runqueue" Linux convention from §3 is modelled by the
///   class still *counting* the running task in [`Scheduler::nr_queued`].)
/// * The load balancer never migrates a currently running task (§3).
pub trait Scheduler {
    /// Short machine-readable name: `"cfs"` or `"ule"`.
    fn name(&self) -> &'static str;

    /// Choose the CPU on which a new or waking task should be enqueued.
    /// Linux `select_task_rq` ↔ FreeBSD `sched_pickcpu`.
    ///
    /// `stats.cpus_scanned` must be incremented for every CPU examined so
    /// the kernel can charge placement overhead to `waking_cpu`.
    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        kind: WakeKind,
        waking_cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId;

    /// Add a task to `cpu`'s runqueue. Linux `enqueue_task` ↔ FreeBSD
    /// `sched_add` / `sched_wakeup` (selected by `kind`).
    ///
    /// Returns whether the task should preempt `cpu`'s current task. (ULE
    /// returns [`Preempt::No`] for timeshare tasks: "full preemption is
    /// disabled"; CFS applies the 1 ms wakeup-granularity vruntime check.)
    fn enqueue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: EnqueueKind,
        now: Time,
    ) -> Preempt;

    /// Remove a task from `cpu`'s runqueue. Linux `dequeue_task` ↔ FreeBSD
    /// `sched_rem`.
    fn dequeue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: DequeueKind,
        now: Time,
    );

    /// The current task gives up the CPU. Linux `yield_task` ↔ FreeBSD
    /// `sched_relinquish`.
    fn yield_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time);

    /// Select the next task to run on `cpu`, removing it from the queue
    /// structure. Linux `pick_next_task` ↔ FreeBSD `sched_choose`.
    /// `None` means the CPU should run its idle loop.
    fn pick_next_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid>;

    /// Account for the task that just stopped running and reinsert it into
    /// the queue if still runnable. Linux `put_prev_task` ↔ FreeBSD
    /// `sched_switch`.
    fn put_prev_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, tid: Tid, now: Time);

    /// Scheduler tick for the running task `curr` on `cpu` (1 ms cadence).
    /// Returns whether `curr` should be preempted (slice exhausted, fairness
    /// violated, ...).
    fn task_tick(&mut self, tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt;

    /// A task was forked. ULE copies the parent's sleep/run history here
    /// ("when a thread is created, it inherits the runtime and sleeptime of
    /// its parent"); CFS initialises the child's vruntime.
    fn task_fork(&mut self, tasks: &TaskTable, child: Tid, parent: Option<Tid>, now: Time);

    /// A task died. ULE refunds the child's recent runtime to the parent
    /// ("when a thread dies, its runtime in the last 5 seconds is returned
    /// to its parent").
    fn task_dead(&mut self, tasks: &TaskTable, tid: Tid, now: Time);

    /// Periodic-balancing opportunity, invoked on every tick of every CPU.
    /// The class keeps its own timers: CFS balances a domain when that
    /// domain's interval expired (4 ms base); ULE acts only on core 0 with a
    /// randomized 0.5–1.5 s period. Migrations are applied internally
    /// (updating `Task::cpu`); CPUs that received tasks — and should be
    /// rescheduled if idle — are appended to `targets`. The kernel passes
    /// the same cleared buffer on every tick, so the per-tick hot path
    /// allocates nothing.
    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    );

    /// `cpu` is about to go idle; try to steal/pull work. Returns `true` if
    /// at least one task was pulled into `cpu`'s runqueue. Linux newidle
    /// balancing ↔ FreeBSD `tdq_idled`.
    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool;

    /// Number of tasks the class accounts to `cpu`'s runqueue, *including*
    /// the currently running one (the paper's ported-ULE convention).
    fn nr_queued(&self, cpu: CpuId) -> usize;

    /// Append the tids currently queued on `cpu` (excluding the running
    /// task) to `out`. The allocation-free primitive behind
    /// [`Scheduler::queued_tids`]; balancers call it with a reused scratch
    /// buffer.
    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>);

    /// Tids currently queued on `cpu` (excluding the running task).
    /// Convenience wrapper over [`Scheduler::queued_tids_into`] for tests
    /// and diagnostics; allocates.
    fn queued_tids(&self, cpu: CpuId) -> Vec<Tid> {
        let mut out = Vec::new();
        self.queued_tids_into(cpu, &mut out);
        out
    }

    /// Point-in-time scheduler-internal state of a task, for the figures.
    fn snapshot(&self, tasks: &TaskTable, tid: Tid) -> TaskSnapshot;

    /// Self-audit of the class's internal state for `cpu`, called by the
    /// SchedSan invariant checker after every event when strict checking
    /// is on. Implementations verify their class-specific invariants (CFS:
    /// `min_vruntime` monotonicity, tree/accounting consistency; ULE:
    /// priority-range validity, priority-multiset consistency) and return
    /// a description of the first violation found. Takes `&mut self` so an
    /// audit may keep memory between calls (e.g. the last observed
    /// `min_vruntime` for monotonicity). The default audits nothing.
    fn audit(&mut self, tasks: &TaskTable, cpu: CpuId, now: Time) -> Result<(), String> {
        let _ = (tasks, cpu, now);
        Ok(())
    }

    /// `cpu` is going offline (hotplug). The class must stop placing or
    /// migrating tasks onto it until [`Scheduler::cpu_online`]; the kernel
    /// drains the runqueue through the normal dequeue/select/enqueue path
    /// immediately after this call. The default ignores hotplug (fine for
    /// classes never run under fault injection).
    fn cpu_offline(&mut self, cpu: CpuId) {
        let _ = cpu;
    }

    /// `cpu` came back online and may receive tasks again.
    fn cpu_online(&mut self, cpu: CpuId) {
        let _ = cpu;
    }
}
