//! The task (thread) model and the task table.
//!
//! A [`Task`] carries only scheduler-*independent* state: identity, nice
//! value, cgroup, CPU placement, lifecycle state and generic accounting.
//! Scheduler-specific per-task state (vruntime for CFS, sleep/run history
//! for ULE) lives in side tables owned by the scheduler crates, mirroring
//! how Linux embeds `sched_entity` in `task_struct` per class.

use simcore::{Dur, Time};
use topology::CpuId;

use crate::ids::{GroupId, Tid};

/// Lifecycle state of a task, as the kernel sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Created, not yet enqueued anywhere.
    New,
    /// On a runqueue, waiting for a CPU.
    Runnable,
    /// Currently executing on `Task::cpu`.
    Running,
    /// Voluntarily sleeping (timer, I/O, lock, condition, barrier, pipe).
    Sleeping,
    /// Exited; slot may be reused.
    Dead,
}

/// One thread.
#[derive(Debug, Clone)]
pub struct Task {
    /// Identity; stable for the lifetime of the task.
    pub tid: Tid,
    /// Debug name, e.g. `"fibo"` or `"sysbench-worker-17"`.
    pub name: String,
    /// Nice value in `[-20, 19]`; 0 for almost all paper workloads.
    pub nice: i32,
    /// The application (cgroup) this task belongs to. CFS arbitrates
    /// fairness between groups; ULE ignores this field.
    pub group: GroupId,
    /// Lifecycle state.
    pub state: TaskState,
    /// The CPU whose runqueue currently holds the task (or ran it last).
    pub cpu: CpuId,
    /// The CPU the task last actually executed on (for cache affinity).
    pub last_cpu: CpuId,
    /// Optional hard affinity mask; `None` means "any CPU". The Figure 6
    /// experiment pins 512 threads to core 0 and then clears the mask.
    pub affinity: Option<Vec<CpuId>>,
    /// Parent task, if any (ULE's fork inheritance needs it).
    pub parent: Option<Tid>,
    /// Synthetic fork history `(runtime, sleeptime)` for tasks whose parent
    /// lives outside the simulation (e.g. a master thread forked from
    /// `bash`). Consulted by ULE's `task_fork` when `parent` is `None`.
    pub inherit_history: Option<(Dur, Dur)>,
    /// Total CPU time consumed so far.
    pub sum_exec: Dur,
    /// When the task last started/stopped being accounted on a CPU.
    pub last_ran: Time,
    /// When the task last went to sleep (for sleep-duration accounting).
    pub sleep_start: Time,
    /// When the task was last woken.
    pub last_wakeup: Time,
    /// Whether the scheduler currently holds this task in a runqueue
    /// (including "running with the rq-resident convention", see §3).
    pub on_rq: bool,
    /// Marks per-cpu kernel/idle-priority tasks; these are the only tasks
    /// allowed to preempt under ULE's "full preemption disabled" policy.
    pub kernel_thread: bool,
}

impl Task {
    /// A fresh task in the `New` state.
    pub fn new(tid: Tid, name: impl Into<String>, group: GroupId) -> Task {
        Task {
            tid,
            name: name.into(),
            nice: 0,
            group,
            state: TaskState::New,
            cpu: CpuId(0),
            last_cpu: CpuId(0),
            affinity: None,
            parent: None,
            inherit_history: None,
            sum_exec: Dur::ZERO,
            last_ran: Time::ZERO,
            sleep_start: Time::ZERO,
            last_wakeup: Time::ZERO,
            on_rq: false,
            kernel_thread: false,
        }
    }

    /// `true` if this task may run on `cpu` under its affinity mask.
    pub fn allowed_on(&self, cpu: CpuId) -> bool {
        match &self.affinity {
            None => true,
            Some(mask) => mask.contains(&cpu),
        }
    }

    /// `true` if the task is runnable or running.
    pub fn is_active(&self) -> bool {
        matches!(self.state, TaskState::Runnable | TaskState::Running)
    }
}

/// Slab of tasks indexed by [`Tid`]. Slots of dead tasks are reused.
#[derive(Debug, Default)]
pub struct TaskTable {
    slots: Vec<Option<Task>>,
    free: Vec<u32>,
    live: usize,
}

impl TaskTable {
    /// Empty table.
    pub fn new() -> TaskTable {
        TaskTable::default()
    }

    /// Allocate a slot and build the task with the assigned tid.
    pub fn insert_with(&mut self, f: impl FnOnce(Tid) -> Task) -> Tid {
        let tid = match self.free.pop() {
            Some(i) => Tid(i),
            None => {
                self.slots.push(None);
                Tid(self.slots.len() as u32 - 1)
            }
        };
        let task = f(tid);
        debug_assert_eq!(task.tid, tid, "task must carry the assigned tid");
        self.slots[tid.index()] = Some(task);
        self.live += 1;
        tid
    }

    /// Remove a task, freeing its slot for reuse.
    pub fn remove(&mut self, tid: Tid) -> Option<Task> {
        let t = self.slots.get_mut(tid.index())?.take();
        if t.is_some() {
            self.free.push(tid.0);
            self.live -= 1;
        }
        t
    }

    /// Shared access to a live task.
    #[inline]
    pub fn get(&self, tid: Tid) -> &Task {
        self.slots[tid.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no such task: {tid}"))
    }

    /// Exclusive access to a live task.
    #[inline]
    pub fn get_mut(&mut self, tid: Tid) -> &mut Task {
        self.slots[tid.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("no such task: {tid}"))
    }

    /// `true` if `tid` names a live task.
    pub fn contains(&self, tid: Tid) -> bool {
        self.slots
            .get(tid.index())
            .map(|s| s.is_some())
            .unwrap_or(false)
    }

    /// Number of live tasks.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live tasks.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate over live tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Iterate mutably over live tasks.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Task> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }

    /// Capacity of the underlying slab (max tid ever + 1); useful for
    /// sizing scheduler side tables.
    pub fn slab_len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(table: &mut TaskTable, name: &str) -> Tid {
        table.insert_with(|tid| Task::new(tid, name, GroupId::ROOT))
    }

    #[test]
    fn insert_get_remove() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, "a");
        let b = mk(&mut t, "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).name, "a");
        assert_eq!(t.get(b).name, "b");
        assert!(t.remove(a).is_some());
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
    }

    #[test]
    fn slots_are_reused() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, "a");
        t.remove(a);
        let c = mk(&mut t, "c");
        assert_eq!(a, c, "slot should be recycled");
        assert_eq!(t.get(c).name, "c");
    }

    #[test]
    fn double_remove_is_none() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, "a");
        assert!(t.remove(a).is_some());
        assert!(t.remove(a).is_none());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn affinity_mask() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, "a");
        assert!(t.get(a).allowed_on(CpuId(5)));
        t.get_mut(a).affinity = Some(vec![CpuId(0)]);
        assert!(t.get(a).allowed_on(CpuId(0)));
        assert!(!t.get(a).allowed_on(CpuId(5)));
    }

    #[test]
    fn iter_sees_only_live() {
        let mut t = TaskTable::new();
        let a = mk(&mut t, "a");
        let _b = mk(&mut t, "b");
        t.remove(a);
        let names: Vec<_> = t.iter().map(|x| x.name.clone()).collect();
        assert_eq!(names, vec!["b"]);
    }
}
