//! Typed, serializable scheduler parameter spaces (`battle tune`).
//!
//! The paper holds every tunable at its shipped default; the auto-tuner
//! needs those tunables as *data*: a flat vector of numbers with declared
//! bounds, so a search algorithm can propose candidates without knowing
//! anything about the scheduler behind them. Each scheduler's params
//! struct implements [`ParamSpace`]:
//!
//! * [`ParamSpace::dims`] declares the tunable dimensions — name, bounds,
//!   default and a [`DimScale`] describing how the raw value maps into the
//!   search's normalised unit cube,
//! * [`ParamSpace::to_vector`] / [`ParamSpace::from_vector`] convert
//!   between the struct and a raw [`ParamVector`] (one `f64` per
//!   dimension, durations carried as nanoseconds).
//!
//! Decoding always clamps to the declared bounds and rounds discrete
//! dimensions, so *any* vector — including one proposed by a search step
//! that walked past an edge — produces a valid configuration, and
//! `to_vector(from_vector(v))` is the identity on quantized in-bounds
//! vectors (the round-trip property the tuner's dedup cache relies on).

use simcore::Dur;

/// How a dimension maps between its raw value and the `[0, 1]` unit
/// interval the search samples in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimScale {
    /// Straight-line interpolation between the bounds.
    Linear,
    /// Exponential interpolation — equal unit steps multiply the raw value
    /// by equal factors. Bounds must be positive.
    Log,
    /// Linear, rounded to the nearest whole number (counts, percentages).
    Integer,
    /// A time span in nanoseconds. Log-interpolated (scheduler time
    /// tunables span orders of magnitude) and rounded to whole
    /// nanoseconds, so decoded values are exact [`Dur`]s.
    Duration,
}

impl DimScale {
    /// Stable lowercase label used in reports and the tuned-config TOML.
    pub fn label(self) -> &'static str {
        match self {
            DimScale::Linear => "linear",
            DimScale::Log => "log",
            DimScale::Integer => "integer",
            DimScale::Duration => "duration",
        }
    }

    /// `true` if decoded raw values are rounded to whole numbers.
    pub fn discrete(self) -> bool {
        matches!(self, DimScale::Integer | DimScale::Duration)
    }

    /// `true` if the unit mapping is logarithmic.
    pub fn logarithmic(self) -> bool {
        matches!(self, DimScale::Log | DimScale::Duration)
    }
}

/// One tunable dimension of a parameter space.
#[derive(Debug, Clone)]
pub struct Dim {
    /// Stable identifier (the key in tuned-config files and reports).
    pub name: &'static str,
    /// Inclusive lower bound, in raw units (ns for durations).
    pub lo: f64,
    /// Inclusive upper bound, in raw units.
    pub hi: f64,
    /// The shipped default, in raw units.
    pub default: f64,
    /// Raw ↔ unit mapping.
    pub scale: DimScale,
}

impl Dim {
    fn checked(self) -> Dim {
        assert!(
            self.lo < self.hi,
            "{}: empty bound range [{}, {}]",
            self.name,
            self.lo,
            self.hi
        );
        assert!(
            self.lo <= self.default && self.default <= self.hi,
            "{}: default {} outside [{}, {}]",
            self.name,
            self.default,
            self.lo,
            self.hi
        );
        if self.scale.logarithmic() {
            assert!(self.lo > 0.0, "{}: log scale needs positive lo", self.name);
        }
        self
    }

    /// A linearly interpolated dimension.
    pub fn linear(name: &'static str, lo: f64, hi: f64, default: f64) -> Dim {
        Dim {
            name,
            lo,
            hi,
            default,
            scale: DimScale::Linear,
        }
        .checked()
    }

    /// A log-interpolated dimension (positive bounds).
    pub fn log(name: &'static str, lo: f64, hi: f64, default: f64) -> Dim {
        Dim {
            name,
            lo,
            hi,
            default,
            scale: DimScale::Log,
        }
        .checked()
    }

    /// A whole-number dimension.
    pub fn integer(name: &'static str, lo: u64, hi: u64, default: u64) -> Dim {
        Dim {
            name,
            lo: lo as f64,
            hi: hi as f64,
            default: default as f64,
            scale: DimScale::Integer,
        }
        .checked()
    }

    /// A duration dimension, carried as nanoseconds.
    pub fn duration(name: &'static str, lo: Dur, hi: Dur, default: Dur) -> Dim {
        Dim {
            name,
            lo: lo.as_nanos() as f64,
            hi: hi.as_nanos() as f64,
            default: default.as_nanos() as f64,
            scale: DimScale::Duration,
        }
        .checked()
    }

    /// Clamp `raw` into the bounds and round it if the dimension is
    /// discrete. Every decoded value passes through this.
    pub fn quantize(&self, raw: f64) -> f64 {
        let c = if raw.is_nan() {
            self.default
        } else {
            raw.clamp(self.lo, self.hi)
        };
        if self.scale.discrete() {
            // Rounding can only move the value by < 1, but re-clamp so a
            // bound that is itself fractional stays honoured.
            c.round().clamp(self.lo.ceil(), self.hi.floor())
        } else {
            c
        }
    }

    /// Map a (quantized) raw value to the `[0, 1]` unit interval.
    pub fn to_unit(&self, raw: f64) -> f64 {
        let q = self.quantize(raw);
        let u = if self.scale.logarithmic() {
            (q.ln() - self.lo.ln()) / (self.hi.ln() - self.lo.ln())
        } else {
            (q - self.lo) / (self.hi - self.lo)
        };
        u.clamp(0.0, 1.0)
    }

    /// Map a unit-interval position back to a quantized raw value.
    pub fn from_unit(&self, u: f64) -> f64 {
        let u = if u.is_nan() { 0.5 } else { u.clamp(0.0, 1.0) };
        // Pin the corners exactly: exp(ln(hi)) need not round-trip in f64.
        let raw = if u == 0.0 {
            self.lo
        } else if u == 1.0 {
            self.hi
        } else if self.scale.logarithmic() {
            (self.lo.ln() + u * (self.hi.ln() - self.lo.ln())).exp()
        } else {
            self.lo + u * (self.hi - self.lo)
        };
        self.quantize(raw)
    }
}

/// A point in a parameter space: one raw `f64` per dimension, in
/// [`ParamSpace::dims`] order. Durations are nanoseconds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParamVector(pub Vec<f64>);

impl ParamVector {
    /// The space's default point.
    pub fn defaults(dims: &[Dim]) -> ParamVector {
        ParamVector(dims.iter().map(|d| d.quantize(d.default)).collect())
    }

    /// Dimension `i`'s value, quantized; the default if the vector is
    /// short (so old tuned files stay loadable after a space grows).
    pub fn value(&self, i: usize, dims: &[Dim]) -> f64 {
        let d = &dims[i];
        self.0.get(i).map(|&x| d.quantize(x)).unwrap_or(d.default)
    }

    /// Dimension `i` as a [`Dur`] (must be a `Duration` dimension).
    pub fn dur(&self, i: usize, dims: &[Dim]) -> Dur {
        debug_assert_eq!(dims[i].scale, DimScale::Duration, "{}", dims[i].name);
        Dur::nanos(self.value(i, dims) as u64)
    }

    /// Dimension `i` as an unsigned integer.
    pub fn int(&self, i: usize, dims: &[Dim]) -> u64 {
        self.value(i, dims).max(0.0) as u64
    }

    /// Every value clamped/rounded per its dimension (identity on vectors
    /// already produced by `to_vector`/`from_unit`).
    pub fn quantized(&self, dims: &[Dim]) -> ParamVector {
        ParamVector(
            dims.iter()
                .enumerate()
                .map(|(i, _)| self.value(i, dims))
                .collect(),
        )
    }

    /// This point in unit space.
    pub fn to_units(&self, dims: &[Dim]) -> Vec<f64> {
        dims.iter()
            .enumerate()
            .map(|(i, d)| d.to_unit(self.value(i, dims)))
            .collect()
    }

    /// A quantized point from unit-space coordinates.
    pub fn from_units(units: &[f64], dims: &[Dim]) -> ParamVector {
        ParamVector(
            dims.iter()
                .enumerate()
                .map(|(i, d)| d.from_unit(units.get(i).copied().unwrap_or(0.5)))
                .collect(),
        )
    }

    /// Exact bit-pattern key for dedup caches (quantize first: the tuner
    /// only ever evaluates quantized vectors).
    pub fn bits_key(&self) -> Vec<u64> {
        self.0.iter().map(|v| v.to_bits()).collect()
    }
}

impl serde::Serialize for ParamVector {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Array(self.0.iter().map(|v| serde::Value::Float(*v)).collect())
    }
}

/// A scheduler configuration with a declared, searchable tunable space.
pub trait ParamSpace: Sized + Default {
    /// The tunable dimensions, in vector order. Stable across releases
    /// except by appending (tuned files key on position).
    fn dims() -> Vec<Dim>;

    /// Current values as a raw vector, one entry per dimension.
    fn to_vector(&self) -> ParamVector;

    /// Build a configuration from a raw vector. Out-of-bounds values are
    /// clamped, discrete dimensions rounded, missing entries defaulted;
    /// fields not covered by any dimension keep their `Default` value.
    fn from_vector(v: &ParamVector) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Vec<Dim> {
        vec![
            Dim::linear("lin", -2.0, 6.0, 0.0),
            Dim::log("log", 0.5, 512.0, 8.0),
            Dim::integer("int", 1, 9, 3),
            Dim::duration("dur", Dur::micros(100), Dur::millis(100), Dur::millis(4)),
        ]
    }

    #[test]
    fn clamping_at_both_edges() {
        for d in dims() {
            assert_eq!(d.quantize(f64::NEG_INFINITY), d.lo);
            assert_eq!(d.quantize(f64::INFINITY), d.hi);
            assert_eq!(d.quantize(d.lo - 1.0), d.lo);
            assert_eq!(d.quantize(d.hi + 1.0), d.hi);
            assert_eq!(d.quantize(d.lo), d.lo);
            assert_eq!(d.quantize(d.hi), d.hi);
            assert_eq!(d.quantize(f64::NAN), d.quantize(d.default));
        }
    }

    #[test]
    fn unit_mapping_hits_the_corners() {
        for d in dims() {
            assert_eq!(d.from_unit(0.0), d.lo);
            assert_eq!(d.from_unit(1.0), d.hi);
            assert!((d.to_unit(d.lo) - 0.0).abs() < 1e-12);
            assert!((d.to_unit(d.hi) - 1.0).abs() < 1e-12);
            // Out-of-cube positions clamp instead of extrapolating.
            assert_eq!(d.from_unit(-3.0), d.lo);
            assert_eq!(d.from_unit(7.0), d.hi);
        }
    }

    #[test]
    fn log_scale_duration_is_multiplicative() {
        let d = Dim::duration("slice", Dur::millis(1), Dur::millis(64), Dur::millis(8));
        // Halfway in unit space = geometric mean of the bounds: 8 ms.
        let mid = d.from_unit(0.5);
        assert_eq!(mid, Dur::millis(8).as_nanos() as f64);
        // Equal unit steps multiply by equal factors: over a ×16 range,
        // each quarter step doubles.
        let d16 = Dim::duration("slice16", Dur::millis(1), Dur::millis(16), Dur::millis(4));
        assert_eq!(d16.from_unit(0.25), Dur::millis(2).as_nanos() as f64);
        assert_eq!(d16.from_unit(0.75), Dur::millis(8).as_nanos() as f64);
        // Decoded durations are whole nanoseconds.
        let v = d.from_unit(0.371);
        assert_eq!(v, v.round());
    }

    #[test]
    fn integer_dims_round() {
        let d = Dim::integer("n", 1, 9, 3);
        assert_eq!(d.quantize(4.4), 4.0);
        assert_eq!(d.quantize(4.6), 5.0);
        assert_eq!(d.from_unit(0.5), 5.0);
    }

    #[test]
    fn vector_roundtrip_identity() {
        let dims = dims();
        for u in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            let units = vec![u; dims.len()];
            let v = ParamVector::from_units(&units, &dims);
            // quantized → unit → raw is stable.
            let back = ParamVector::from_units(&v.to_units(&dims), &dims);
            assert_eq!(v, back, "u = {u}");
            assert_eq!(v.quantized(&dims), v);
        }
    }

    #[test]
    fn short_vectors_fall_back_to_defaults() {
        let dims = dims();
        let v = ParamVector(vec![1.5]);
        assert_eq!(v.value(0, &dims), 1.5);
        assert_eq!(v.value(2, &dims), 3.0);
        assert_eq!(v.dur(3, &dims), Dur::millis(4));
    }
}
