//! Linux's nice→weight mapping.
//!
//! CFS weighs a thread's vruntime progression and its load contribution by
//! this table: each nice step changes the weight by ≈ 1.25×, so one nice
//! level ≈ 10 % CPU share difference between two competing threads. The
//! values are `sched_prio_to_weight[]` from `kernel/sched/core.c`, verbatim.

/// The CFS weight of a nice-0 task.
pub const NICE_0_LOAD: u64 = 1024;

/// Lowest (most favourable) nice value.
pub const MIN_NICE: i32 = -20;
/// Highest (least favourable) nice value.
pub const MAX_NICE: i32 = 19;

/// Linux `sched_prio_to_weight`: index 0 is nice −20, index 39 is nice +19.
pub const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// Linux `sched_prio_to_wmult`: precomputed `2^32 / weight` for each nice
/// level, verbatim from `kernel/sched/core.c`. Linux's `__calc_delta` uses
/// this fixed-point inverse to avoid a division on the hot path; the
/// simulator keeps the exact u128 division (see [`calc_delta_fair`]) but
/// pins the table so the two formulations can be cross-checked.
pub const PRIO_TO_WMULT: [u64; 40] = [
    48388, 59856, 76040, 92818, 118348, // -20 .. -16
    147320, 184698, 229616, 287308, 360437, // -15 .. -11
    449829, 563644, 704093, 875809, 1099582, // -10 .. -6
    1376151, 1717300, 2157191, 2708050, 3363326, // -5 .. -1
    4194304, 5237765, 6557202, 8165337, 10153587, // 0 .. 4
    12820798, 15790321, 19976592, 24970740, 31350126, // 5 .. 9
    39045157, 49367440, 61356676, 76695844, 95443717, // 10 .. 14
    119304647, 148102320, 186737708, 238609294, 286331153, // 15 .. 19
];

/// The CFS load weight for a nice level (clamped into `[-20, 19]`).
pub fn nice_to_weight(nice: i32) -> u64 {
    let idx = (nice.clamp(MIN_NICE, MAX_NICE) - MIN_NICE) as usize;
    PRIO_TO_WEIGHT[idx]
}

/// The fixed-point inverse weight (`2^32 / weight`) for a nice level
/// (clamped into `[-20, 19]`).
pub fn nice_to_wmult(nice: i32) -> u64 {
    let idx = (nice.clamp(MIN_NICE, MAX_NICE) - MIN_NICE) as usize;
    PRIO_TO_WMULT[idx]
}

/// vruntime progression for `delta_ns` of real execution at `weight`:
/// `delta × NICE_0_LOAD / weight`, computed exactly in u128.
///
/// This is the one weighting formula every scheduling class shares (CFS
/// `update_curr`, EEVDF vruntime/deadline math, scx_vtime). The nice-0
/// fast path skips the u128 divide; the exhaustive cross-check test below
/// pins that the shortcut is bit-identical to the divide for *every*
/// weight, so a class may call this on its hot path without re-verifying.
#[inline]
pub fn calc_delta_fair(delta_ns: u64, weight: u64) -> u64 {
    if weight == NICE_0_LOAD {
        return delta_ns;
    }
    (delta_ns as u128 * NICE_0_LOAD as u128 / weight.max(1) as u128) as u64
}

/// Linux static priority of a nice level: `120 + nice`, inside the CFS range
/// 100–139 that the paper scales ULE's scores into (§3).
pub fn nice_to_prio(nice: i32) -> i32 {
    120 + nice.clamp(MIN_NICE, MAX_NICE)
}

/// Inverse of [`nice_to_prio`].
pub fn prio_to_nice(prio: i32) -> i32 {
    (prio - 120).clamp(MIN_NICE, MAX_NICE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_zero_is_1024() {
        assert_eq!(nice_to_weight(0), NICE_0_LOAD);
    }

    #[test]
    fn extremes_match_linux_table() {
        assert_eq!(nice_to_weight(-20), 88761);
        assert_eq!(nice_to_weight(19), 15);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(nice_to_weight(-100), 88761);
        assert_eq!(nice_to_weight(100), 15);
    }

    #[test]
    fn neighbouring_levels_differ_by_about_25_percent() {
        for n in MIN_NICE..MAX_NICE {
            let hi = nice_to_weight(n) as f64;
            let lo = nice_to_weight(n + 1) as f64;
            let ratio = hi / lo;
            assert!(
                (1.15..1.40).contains(&ratio),
                "nice {n}→{} ratio {ratio}",
                n + 1
            );
        }
    }

    #[test]
    fn wmult_extremes_match_linux_table() {
        assert_eq!(nice_to_wmult(-20), 48388);
        assert_eq!(nice_to_wmult(0), 4194304); // 2^32 / 1024 exactly
        assert_eq!(nice_to_wmult(19), 286331153);
        assert_eq!(nice_to_wmult(-100), 48388);
        assert_eq!(nice_to_wmult(100), 286331153);
    }

    /// Every WMULT entry is the correctly rounded `2^32 / weight` of the
    /// weight at the same index — the tables are inverses of each other,
    /// not two independently copied constants.
    #[test]
    fn wmult_is_inverse_of_weight() {
        for i in 0..40 {
            let w = PRIO_TO_WEIGHT[i];
            let computed = ((1u64 << 32) + w / 2) / w;
            // Linux truncates rather than rounds for a few entries; accept
            // both the truncated and rounded inverse.
            let truncated = (1u64 << 32) / w;
            assert!(
                PRIO_TO_WMULT[i] == computed || PRIO_TO_WMULT[i] == truncated,
                "index {i}: wmult {} is neither {} nor {}",
                PRIO_TO_WMULT[i],
                computed,
                truncated
            );
        }
    }

    /// The nice-0 fast path in [`calc_delta_fair`] must be bit-identical
    /// to the u128-division slow path for every weight in the table and a
    /// grid of deltas spanning sub-microsecond ticks to multi-minute runs.
    #[test]
    fn calc_delta_fair_fast_path_exhaustive() {
        let deltas = [
            0u64,
            1,
            999,
            1_000,
            1_000_000, // 1 ms tick
            3_333_333,
            1_000_000_000,   // 1 s
            120_000_000_000, // 2 min
            u32::MAX as u64,
            (1u64 << 53) - 1,
        ];
        for &w in &PRIO_TO_WEIGHT {
            for &d in &deltas {
                let reference = (d as u128 * NICE_0_LOAD as u128 / w as u128) as u64;
                assert_eq!(
                    calc_delta_fair(d, w),
                    reference,
                    "weight {w} delta {d}: fast path diverged from exact division"
                );
            }
        }
        // The shortcut itself: ×1024/1024 must be the identity.
        for &d in &deltas {
            assert_eq!(calc_delta_fair(d, NICE_0_LOAD), d);
        }
    }

    /// Inverse-weight round trip: reconstructing the vruntime delta with
    /// the WMULT fixed-point multiply stays within one ulp of the exact
    /// division for tick-sized deltas (Linux's tolerance on the real path).
    #[test]
    fn wmult_path_tracks_exact_division() {
        for i in 0..40 {
            let w = PRIO_TO_WEIGHT[i];
            for d in [1_000u64, 1_000_000, 4_000_000] {
                let exact = calc_delta_fair(d, w);
                let fixed =
                    ((d as u128 * NICE_0_LOAD as u128 * PRIO_TO_WMULT[i] as u128) >> 32) as u64;
                let diff = exact.abs_diff(fixed);
                // 2^32/weight is rounded to the nearest integer, so the
                // fixed-point product drifts by at most delta*1024*|err|/2^32
                // < delta/2^22 per nanosecond of weighted delta.
                let bound = (d * 1024 / w) / (1 << 22) + 2;
                assert!(
                    diff <= bound,
                    "index {i} weight {w} delta {d}: exact {exact} vs fixed {fixed}"
                );
            }
        }
    }

    #[test]
    fn prio_round_trip() {
        for n in MIN_NICE..=MAX_NICE {
            assert_eq!(prio_to_nice(nice_to_prio(n)), n);
        }
        assert_eq!(nice_to_prio(0), 120);
        assert!((100..=139).contains(&nice_to_prio(-20)));
        assert!((100..=139).contains(&nice_to_prio(19)));
    }
}
