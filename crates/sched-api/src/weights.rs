//! Linux's nice→weight mapping.
//!
//! CFS weighs a thread's vruntime progression and its load contribution by
//! this table: each nice step changes the weight by ≈ 1.25×, so one nice
//! level ≈ 10 % CPU share difference between two competing threads. The
//! values are `sched_prio_to_weight[]` from `kernel/sched/core.c`, verbatim.

/// The CFS weight of a nice-0 task.
pub const NICE_0_LOAD: u64 = 1024;

/// Lowest (most favourable) nice value.
pub const MIN_NICE: i32 = -20;
/// Highest (least favourable) nice value.
pub const MAX_NICE: i32 = 19;

/// Linux `sched_prio_to_weight`: index 0 is nice −20, index 39 is nice +19.
pub const PRIO_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, // -20 .. -16
    29154, 23254, 18705, 14949, 11916, // -15 .. -11
    9548, 7620, 6100, 4904, 3906, // -10 .. -6
    3121, 2501, 1991, 1586, 1277, // -5 .. -1
    1024, 820, 655, 526, 423, // 0 .. 4
    335, 272, 215, 172, 137, // 5 .. 9
    110, 87, 70, 56, 45, // 10 .. 14
    36, 29, 23, 18, 15, // 15 .. 19
];

/// The CFS load weight for a nice level (clamped into `[-20, 19]`).
pub fn nice_to_weight(nice: i32) -> u64 {
    let idx = (nice.clamp(MIN_NICE, MAX_NICE) - MIN_NICE) as usize;
    PRIO_TO_WEIGHT[idx]
}

/// Linux static priority of a nice level: `120 + nice`, inside the CFS range
/// 100–139 that the paper scales ULE's scores into (§3).
pub fn nice_to_prio(nice: i32) -> i32 {
    120 + nice.clamp(MIN_NICE, MAX_NICE)
}

/// Inverse of [`nice_to_prio`].
pub fn prio_to_nice(prio: i32) -> i32 {
    (prio - 120).clamp(MIN_NICE, MAX_NICE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_zero_is_1024() {
        assert_eq!(nice_to_weight(0), NICE_0_LOAD);
    }

    #[test]
    fn extremes_match_linux_table() {
        assert_eq!(nice_to_weight(-20), 88761);
        assert_eq!(nice_to_weight(19), 15);
    }

    #[test]
    fn clamps_out_of_range() {
        assert_eq!(nice_to_weight(-100), 88761);
        assert_eq!(nice_to_weight(100), 15);
    }

    #[test]
    fn neighbouring_levels_differ_by_about_25_percent() {
        for n in MIN_NICE..MAX_NICE {
            let hi = nice_to_weight(n) as f64;
            let lo = nice_to_weight(n + 1) as f64;
            let ratio = hi / lo;
            assert!(
                (1.15..1.40).contains(&ratio),
                "nice {n}→{} ratio {ratio}",
                n + 1
            );
        }
    }

    #[test]
    fn prio_round_trip() {
        for n in MIN_NICE..=MAX_NICE {
            assert_eq!(prio_to_nice(nice_to_prio(n)), n);
        }
        assert_eq!(nice_to_prio(0), 120);
        assert!((100..=139).contains(&nice_to_prio(-20)));
        assert!((100..=139).contains(&nice_to_prio(19)));
    }
}
