//! Task and group identifiers.

use serde::{Deserialize, Serialize};

/// Identifier of a task (thread). Dense indices into the task table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Tid(pub u32);

impl Tid {
    /// Index into per-task arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Identifier of a control group (one per application in this model).
///
/// Since Linux 2.6.38, CFS arbitrates fairness between cgroups rather than
/// between raw threads (autogroup / systemd per-application groups); the
/// simulated kernel assigns every spawned application its own group. ULE
/// ignores groups entirely — "ULE does not group threads into cgroups, but
/// rather considers each thread as an independent entity" (§2.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub u32);

impl GroupId {
    /// The root group: kernel threads and anything not in an application.
    pub const ROOT: GroupId = GroupId(0);

    /// Index into per-group arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        assert_eq!(Tid(7).index(), 7);
        assert_eq!(GroupId::ROOT.index(), 0);
        assert_eq!(format!("{}", Tid(3)), "tid3");
    }
}
