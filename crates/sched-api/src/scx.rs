//! A slim sched_ext-style plug-in scheduler adapter.
//!
//! Linux's sched_ext (`SCHED_EXT`) lets a BPF program implement scheduling
//! policy through a handful of callbacks — `ops.select_cpu`, `ops.enqueue`,
//! `ops.dispatch` — while the kernel-side framework owns the mechanical
//! parts: dispatch queues, slice bookkeeping, migration plumbing. This
//! module reproduces that split inside the simulator:
//!
//! * [`ScxPolicy`] is the policy surface. A policy sees only a *flat kernel
//!   context* ([`ScxCtx`]: the task table plus per-CPU occupancy) and
//!   answers three questions: where should this task go (`select_cpu`),
//!   with what priority key should it wait (`enqueue`), and where should an
//!   idle CPU pull work from (`dispatch`).
//! * [`ScxSched`] wraps any `ScxPolicy` into a full [`Scheduler`]: it owns
//!   the per-CPU dispatch queues (ordered by the policy's key with FIFO
//!   tie-breaking), enforces the policy's timeslice, handles hotplug and
//!   affinity sanitisation, and passes the SchedSan structural audit — so a
//!   policy author writes ~50 lines and inherits the whole harness
//!   (scenarios, fuzzing, golden digests, tournaments).
//!
//! Two example policies ship with the adapter: [`FifoPolicy`] (global
//! arrival order, the `scx_simple` FIFO mode) and [`VtimePolicy`]
//! (weight-scaled virtual time, the `scx_simple` vtime mode).

use std::collections::BTreeSet;

use simcore::{Dur, Time};
use topology::CpuId;

use crate::ids::Tid;
use crate::sched::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot, WakeKind,
};
use crate::task::{Task, TaskTable};
use crate::weights::{calc_delta_fair, nice_to_weight};

/// Per-CPU occupancy as a policy sees it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScxCpuState {
    /// `false` while the CPU is hotplugged out; offline CPUs must not be
    /// selected or dispatched from.
    pub online: bool,
    /// Tasks waiting on this CPU's dispatch queue (excluding the running
    /// task).
    pub nr_waiting: usize,
    /// Whether a task is currently executing on this CPU.
    pub running: bool,
}

impl ScxCpuState {
    /// Waiting plus running — the load figure placement heuristics compare.
    pub fn load(&self) -> usize {
        self.nr_waiting + usize::from(self.running)
    }
}

/// The flat kernel context handed to every policy callback: global task
/// state plus per-CPU occupancy, nothing else. Policies hold their own
/// per-task side state keyed by [`Tid`].
#[derive(Debug)]
pub struct ScxCtx<'a> {
    /// All live tasks.
    pub tasks: &'a TaskTable,
    /// Per-CPU occupancy, indexed by `CpuId::index()`.
    pub cpus: &'a [ScxCpuState],
    /// Current simulation time.
    pub now: Time,
}

impl ScxCtx<'_> {
    /// The least-loaded online CPU in `task`'s affinity mask, counting every
    /// examined CPU into `stats` (the shared placement helper both example
    /// policies use).
    pub fn least_loaded(&self, task: &Task, stats: &mut SelectStats) -> Option<CpuId> {
        let mut best: Option<(CpuId, usize)> = None;
        for (i, st) in self.cpus.iter().enumerate() {
            let cpu = CpuId(i as u32);
            if !st.online || !task.allowed_on(cpu) {
                continue;
            }
            stats.cpus_scanned += 1;
            match best {
                None => best = Some((cpu, st.load())),
                Some((_, b)) if st.load() < b => best = Some((cpu, st.load())),
                _ => {}
            }
        }
        best.map(|(c, _)| c)
    }
}

/// A sched_ext-style scheduling policy: three decisions against a flat
/// kernel context. Everything else (queues, slices, migration mechanics,
/// audits) is owned by the [`ScxSched`] adapter.
pub trait ScxPolicy {
    /// Short machine-readable name, e.g. `"scx-fifo"`.
    fn name(&self) -> &'static str;

    /// Fixed timeslice the adapter enforces via tick preemption. Must be
    /// finite and well under the strict-mode starvation limit so waiting
    /// tasks always make progress.
    fn slice(&self) -> Dur {
        Dur::millis(5)
    }

    /// Choose the CPU on which a new or waking task should be enqueued
    /// (`ops.select_cpu`). `prev_cpu` is where the task last sat. Count
    /// every examined CPU into `stats`. The adapter falls back to the
    /// first online allowed CPU if the returned one is offline or outside
    /// the task's affinity mask.
    fn select_cpu(
        &mut self,
        ctx: &ScxCtx<'_>,
        tid: Tid,
        prev_cpu: CpuId,
        stats: &mut SelectStats,
    ) -> CpuId;

    /// The priority key under which `tid` waits on its dispatch queue
    /// (`ops.enqueue`). Lower keys run first; ties break by arrival order.
    /// A constant key yields FIFO; a weight-scaled virtual time yields
    /// fair sharing.
    fn enqueue(&mut self, ctx: &ScxCtx<'_>, tid: Tid, kind: EnqueueKind) -> u64;

    /// An idle `cpu` asks where to pull work from (`ops.dispatch`).
    /// Return the victim CPU to steal the head task from, or `None` to
    /// stay idle. The default picks the online CPU with the most waiters.
    fn dispatch(&mut self, ctx: &ScxCtx<'_>, cpu: CpuId, stats: &mut SelectStats) -> Option<CpuId> {
        let mut busiest: Option<(CpuId, usize)> = None;
        for (i, st) in ctx.cpus.iter().enumerate() {
            stats.cpus_scanned += 1;
            if i == cpu.index() || !st.online || st.nr_waiting == 0 {
                continue;
            }
            match busiest {
                None => busiest = Some((CpuId(i as u32), st.nr_waiting)),
                Some((_, b)) if st.nr_waiting > b => {
                    busiest = Some((CpuId(i as u32), st.nr_waiting))
                }
                _ => {}
            }
        }
        busiest.map(|(c, _)| c)
    }

    /// `tid` starts executing (`ops.running`). Default: no-op.
    fn running(&mut self, ctx: &ScxCtx<'_>, tid: Tid) {
        let _ = (ctx, tid);
    }

    /// `tid` stops executing after `ran` of CPU time (`ops.stopping`).
    /// Default: no-op.
    fn stopping(&mut self, ctx: &ScxCtx<'_>, tid: Tid, ran: Dur) {
        let _ = (ctx, tid, ran);
    }
}

/// Where a queued (non-running) task currently sits, so dequeues and
/// migrations find its tree entry without scanning.
#[derive(Debug, Clone, Copy)]
struct Slot {
    cpu: CpuId,
    key: u64,
    seq: u64,
}

/// Adapter wrapping an [`ScxPolicy`] into a full [`Scheduler`]; see module
/// docs for the framework/policy split.
pub struct ScxSched<P> {
    policy: P,
    /// Per-CPU dispatch queue ordered by (policy key, arrival seq, tid).
    qs: Vec<BTreeSet<(u64, u64, Tid)>>,
    curr: Vec<Option<Tid>>,
    /// When the running task was picked (slice + stopping accounting).
    run_start: Vec<Time>,
    online: Vec<bool>,
    /// Queued-task location, indexed by `Tid::index()`.
    slots: Vec<Option<Slot>>,
    /// Arrival tie-breaker, monotonically increasing.
    seq: u64,
    /// Scratch for building [`ScxCtx`] without per-call allocation.
    cpu_scratch: Vec<ScxCpuState>,
}

/// Fill `out` with the per-CPU occupancy view (free function so callers can
/// split borrows between the context and the policy).
fn fill_cpu_states(
    qs: &[BTreeSet<(u64, u64, Tid)>],
    curr: &[Option<Tid>],
    online: &[bool],
    out: &mut Vec<ScxCpuState>,
) {
    out.clear();
    for i in 0..qs.len() {
        out.push(ScxCpuState {
            online: online[i],
            nr_waiting: qs[i].len(),
            running: curr[i].is_some(),
        });
    }
}

/// Run `f(policy, ctx)` with a freshly built context. A macro rather than a
/// method so the disjoint field borrows (`policy` mutable, queue state
/// shared) survive the borrow checker.
macro_rules! with_ctx {
    ($self:ident, $tasks:expr, $now:expr, |$policy:ident, $ctx:ident| $body:expr) => {{
        fill_cpu_states(
            &$self.qs,
            &$self.curr,
            &$self.online,
            &mut $self.cpu_scratch,
        );
        let $ctx = ScxCtx {
            tasks: $tasks,
            cpus: &$self.cpu_scratch,
            now: $now,
        };
        let $policy = &mut $self.policy;
        $body
    }};
}

impl<P: ScxPolicy> ScxSched<P> {
    /// Wrap `policy` over `nr_cpus` dispatch queues.
    pub fn new(policy: P, nr_cpus: usize) -> ScxSched<P> {
        ScxSched {
            policy,
            qs: (0..nr_cpus).map(|_| BTreeSet::new()).collect(),
            curr: vec![None; nr_cpus],
            run_start: vec![Time::ZERO; nr_cpus],
            online: vec![true; nr_cpus],
            slots: Vec::new(),
            seq: 0,
            cpu_scratch: Vec::new(),
        }
    }

    fn slot_mut(&mut self, tid: Tid) -> &mut Option<Slot> {
        if self.slots.len() <= tid.index() {
            self.slots.resize(tid.index() + 1, None);
        }
        &mut self.slots[tid.index()]
    }

    /// Insert `tid` on `cpu` under `key`, recording its slot.
    fn push(&mut self, cpu: CpuId, tid: Tid, key: u64) {
        let seq = self.seq;
        self.seq += 1;
        let fresh = self.qs[cpu.index()].insert((key, seq, tid));
        debug_assert!(fresh, "{tid} already queued");
        *self.slot_mut(tid) = Some(Slot { cpu, key, seq });
    }

    /// Remove a queued `tid` via its slot. Returns `false` if it was not
    /// queued (e.g. it is the running task).
    fn unqueue(&mut self, tid: Tid) -> bool {
        let Some(slot) = self.slot_mut(tid).take() else {
            return false;
        };
        let had = self.qs[slot.cpu.index()].remove(&(slot.key, slot.seq, tid));
        debug_assert!(had, "{tid} slot points at a missing queue entry");
        had
    }

    /// The running task on `cpu` stops; fire the policy's stopping hook.
    fn stop_curr(&mut self, tasks: &TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        let tid = self.curr[cpu.index()].take()?;
        let ran = now.saturating_since(self.run_start[cpu.index()]);
        with_ctx!(self, tasks, now, |policy, ctx| policy
            .stopping(&ctx, tid, ran));
        Some(tid)
    }
}

impl<P: ScxPolicy> Scheduler for ScxSched<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        let prev = tasks.get(tid).cpu;
        let chosen = with_ctx!(self, tasks, now, |policy, ctx| policy
            .select_cpu(&ctx, tid, prev, stats));
        // Sanitise: the framework, not the policy, is responsible for never
        // placing a task on an offline CPU or outside its affinity mask.
        let task = tasks.get(tid);
        if chosen.index() < self.online.len()
            && self.online[chosen.index()]
            && task.allowed_on(chosen)
        {
            return chosen;
        }
        for (i, &on) in self.online.iter().enumerate() {
            let cpu = CpuId(i as u32);
            stats.cpus_scanned += 1;
            if on && task.allowed_on(cpu) {
                return cpu;
            }
        }
        panic!("{tid} has no online CPU in its affinity mask")
    }

    fn enqueue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: EnqueueKind,
        now: Time,
    ) -> Preempt {
        let key = with_ctx!(self, tasks, now, |policy, ctx| policy
            .enqueue(&ctx, tid, kind));
        self.push(cpu, tid, key);
        // Like ULE with full preemption disabled: only kernel threads
        // preempt on wakeup; everyone else waits for the slice to expire.
        if kind != EnqueueKind::Migrate
            && tasks.get(tid).kernel_thread
            && self.curr[cpu.index()].is_some()
        {
            return Preempt::Yes(PreemptCause::KernelThread);
        }
        Preempt::No
    }

    fn dequeue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        now: Time,
    ) {
        if self.curr[cpu.index()] == Some(tid) {
            self.stop_curr(tasks, cpu, now);
        } else {
            self.unqueue(tid);
        }
    }

    fn yield_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) {
        if let Some(tid) = self.stop_curr(tasks, cpu, now) {
            let key = with_ctx!(self, tasks, now, |policy, ctx| policy.enqueue(
                &ctx,
                tid,
                EnqueueKind::Requeue
            ));
            self.push(cpu, tid, key);
        }
    }

    fn pick_next_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        debug_assert!(self.curr[cpu.index()].is_none(), "pick with a current task");
        let (_, _, tid) = self.qs[cpu.index()].pop_first()?;
        self.slots[tid.index()] = None;
        self.curr[cpu.index()] = Some(tid);
        self.run_start[cpu.index()] = now;
        with_ctx!(self, tasks, now, |policy, ctx| policy.running(&ctx, tid));
        Some(tid)
    }

    fn put_prev_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, tid: Tid, now: Time) {
        debug_assert_eq!(self.curr[cpu.index()], Some(tid));
        self.stop_curr(tasks, cpu, now);
        let key = with_ctx!(self, tasks, now, |policy, ctx| policy.enqueue(
            &ctx,
            tid,
            EnqueueKind::Requeue
        ));
        self.push(cpu, tid, key);
    }

    fn task_tick(&mut self, _tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt {
        debug_assert_eq!(self.curr[cpu.index()], Some(curr));
        if !self.qs[cpu.index()].is_empty()
            && now.saturating_since(self.run_start[cpu.index()]) >= self.policy.slice()
        {
            Preempt::Yes(PreemptCause::SliceExpired)
        } else {
            Preempt::No
        }
    }

    fn task_fork(&mut self, _tasks: &TaskTable, _child: Tid, _parent: Option<Tid>, _now: Time) {}

    fn task_dead(&mut self, _tasks: &TaskTable, tid: Tid, _now: Time) {
        // The kernel dequeues before task_dead; drop any stale slot so a
        // recycled tid starts clean.
        if tid.index() < self.slots.len() {
            debug_assert!(self.slots[tid.index()].is_none(), "{tid} died while queued");
            self.slots[tid.index()] = None;
        }
    }

    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    ) {
        // Idle CPUs re-attempt a dispatch on every tick so work unpinned
        // after the CPU went idle is still picked up.
        if self.nr_queued(cpu) == 0 {
            let mut stats = SelectStats::default();
            if self.idle_balance(tasks, cpu, now, &mut stats) {
                targets.push(cpu);
            }
        }
    }

    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        if !self.online[cpu.index()] {
            return false;
        }
        let Some(victim) = with_ctx!(self, tasks, now, |policy, ctx| policy
            .dispatch(&ctx, cpu, stats))
        else {
            return false;
        };
        if victim.index() >= self.qs.len() || victim == cpu {
            return false;
        }
        // Pull the head-most task allowed on `cpu`, keeping its key.
        let entry = self.qs[victim.index()]
            .iter()
            .find(|&&(_, _, t)| tasks.get(t).allowed_on(cpu))
            .copied();
        let Some((key, seq, tid)) = entry else {
            return false;
        };
        self.qs[victim.index()].remove(&(key, seq, tid));
        self.qs[cpu.index()].insert((key, seq, tid));
        *self.slot_mut(tid) = Some(Slot { cpu, key, seq });
        tasks.get_mut(tid).cpu = cpu;
        true
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        self.qs[cpu.index()].len() + usize::from(self.curr[cpu.index()].is_some())
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        out.extend(self.qs[cpu.index()].iter().map(|&(_, _, t)| t));
    }

    fn snapshot(&self, _tasks: &TaskTable, tid: Tid) -> TaskSnapshot {
        let key = self
            .slots
            .get(tid.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.key);
        TaskSnapshot {
            vruntime_ns: key,
            timeslice_ns: Some(self.policy.slice().as_nanos()),
            ..TaskSnapshot::default()
        }
    }

    fn audit(&mut self, tasks: &TaskTable, cpu: CpuId, _now: Time) -> Result<(), String> {
        let rq = &self.qs[cpu.index()];
        for &(key, seq, tid) in rq.iter() {
            if self.curr[cpu.index()] == Some(tid) {
                return Err(format!("{tid} is both current and queued"));
            }
            if !tasks.contains(tid) {
                return Err(format!("queued {tid} does not exist"));
            }
            match self.slots.get(tid.index()).and_then(|s| s.as_ref()) {
                None => return Err(format!("queued {tid} has no slot")),
                Some(s) if (s.cpu, s.key, s.seq) != (cpu, key, seq) => {
                    return Err(format!(
                        "{tid} slot ({:?},{},{}) disagrees with entry ({:?},{},{})",
                        s.cpu, s.key, s.seq, cpu, key, seq
                    ));
                }
                Some(_) => {}
            }
            if seq >= self.seq {
                return Err(format!(
                    "{tid} seq {seq} from the future (next {})",
                    self.seq
                ));
            }
        }
        if let Some(curr) = self.curr[cpu.index()] {
            if !tasks.contains(curr) {
                return Err(format!("current {curr} does not exist"));
            }
            if let Some(Some(s)) = self.slots.get(curr.index()) {
                return Err(format!(
                    "running {curr} still has a queue slot on {:?}",
                    s.cpu
                ));
            }
        }
        Ok(())
    }

    fn cpu_offline(&mut self, cpu: CpuId) {
        self.online[cpu.index()] = false;
    }

    fn cpu_online(&mut self, cpu: CpuId) {
        self.online[cpu.index()] = true;
    }
}

/// Global-arrival-order FIFO (`scx_simple` in FIFO mode): constant key, so
/// the per-CPU dispatch queues degenerate to arrival order; placement
/// prefers the previous CPU when it is free, else the least-loaded CPU.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl ScxPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "scx-fifo"
    }

    fn select_cpu(
        &mut self,
        ctx: &ScxCtx<'_>,
        tid: Tid,
        prev_cpu: CpuId,
        stats: &mut SelectStats,
    ) -> CpuId {
        let task = ctx.tasks.get(tid);
        if let Some(st) = ctx.cpus.get(prev_cpu.index()) {
            stats.cpus_scanned += 1;
            if st.online && st.load() == 0 && task.allowed_on(prev_cpu) {
                return prev_cpu;
            }
        }
        ctx.least_loaded(task, stats).unwrap_or(prev_cpu)
    }

    fn enqueue(&mut self, _ctx: &ScxCtx<'_>, _tid: Tid, _kind: EnqueueKind) -> u64 {
        0 // constant key: the seq tie-breaker makes the queue FIFO
    }
}

/// Tunables of [`VtimePolicy`] (`battle tune`).
#[derive(Debug, Clone)]
pub struct VtimeParams {
    /// Fixed timeslice the adapter enforces via tick preemption.
    pub slice: Dur,
    /// Sleeper-forgiveness floor: a re-entering task's vtime is raised to
    /// no further than this many (weight-scaled) slices behind the global
    /// clock. Stock `scx_simple` uses one slice.
    pub floor_slices: u64,
}

impl Default for VtimeParams {
    fn default() -> Self {
        VtimeParams {
            slice: Dur::millis(4),
            floor_slices: 1,
        }
    }
}

/// Both vtime knobs are searchable.
impl crate::params::ParamSpace for VtimeParams {
    fn dims() -> Vec<crate::params::Dim> {
        use crate::params::Dim;
        vec![
            Dim::duration("slice", Dur::micros(500), Dur::millis(16), Dur::millis(4)),
            Dim::integer("floor_slices", 1, 8, 1),
        ]
    }

    fn to_vector(&self) -> crate::params::ParamVector {
        crate::params::ParamVector(vec![self.slice.as_nanos() as f64, self.floor_slices as f64])
    }

    fn from_vector(v: &crate::params::ParamVector) -> VtimeParams {
        let d = Self::dims();
        VtimeParams {
            slice: v.dur(0, &d),
            floor_slices: v.int(1, &d),
        }
    }
}

/// Weight-scaled virtual time (`scx_simple` in vtime mode): each task's key
/// advances by `ran × 1024 / weight` while it runs, and sleepers re-enter no
/// further than [`VtimeParams::floor_slices`] slices behind the global
/// clock, so a nice −5 task gets proportionally more CPU without starving
/// nice +5 ones.
#[derive(Debug, Default)]
pub struct VtimePolicy {
    /// Tunables (stock `scx_simple` values by default).
    params: VtimeParams,
    /// Per-task virtual time, indexed by `Tid::index()`.
    vtime: Vec<u64>,
    /// Global virtual clock: the max vtime any task started running with.
    vtime_now: u64,
}

impl VtimePolicy {
    /// A policy with explicit tunables.
    pub fn with_params(params: VtimeParams) -> VtimePolicy {
        VtimePolicy {
            params,
            ..VtimePolicy::default()
        }
    }

    fn vtime_mut(&mut self, tid: Tid) -> &mut u64 {
        if self.vtime.len() <= tid.index() {
            self.vtime.resize(tid.index() + 1, 0);
        }
        &mut self.vtime[tid.index()]
    }
}

impl ScxPolicy for VtimePolicy {
    fn name(&self) -> &'static str {
        "scx-vtime"
    }

    fn slice(&self) -> Dur {
        self.params.slice
    }

    fn select_cpu(
        &mut self,
        ctx: &ScxCtx<'_>,
        tid: Tid,
        prev_cpu: CpuId,
        stats: &mut SelectStats,
    ) -> CpuId {
        ctx.least_loaded(ctx.tasks.get(tid), stats)
            .unwrap_or(prev_cpu)
    }

    fn enqueue(&mut self, ctx: &ScxCtx<'_>, tid: Tid, kind: EnqueueKind) -> u64 {
        let weight = nice_to_weight(ctx.tasks.get(tid).nice);
        let slice_v = calc_delta_fair(self.slice().as_nanos(), weight);
        let floor = self
            .vtime_now
            .saturating_sub(slice_v.saturating_mul(self.params.floor_slices));
        let v = self.vtime_mut(tid);
        if kind == EnqueueKind::New {
            *v = floor; // fresh (or recycled) tasks join at the clock
        } else {
            *v = (*v).max(floor); // long sleepers forgive, but cap the boost
        }
        *v
    }

    fn running(&mut self, _ctx: &ScxCtx<'_>, tid: Tid) {
        let v = *self.vtime_mut(tid);
        self.vtime_now = self.vtime_now.max(v);
    }

    fn stopping(&mut self, ctx: &ScxCtx<'_>, tid: Tid, ran: Dur) {
        let weight = nice_to_weight(ctx.tasks.get(tid).nice);
        *self.vtime_mut(tid) += calc_delta_fair(ran.as_nanos(), weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GroupId;
    use crate::task::TaskState;

    fn table_with(n: usize) -> (TaskTable, Vec<Tid>) {
        let mut t = TaskTable::new();
        let tids = (0..n)
            .map(|i| {
                t.insert_with(|tid| {
                    let mut task = Task::new(tid, format!("t{i}"), GroupId::ROOT);
                    task.state = TaskState::Runnable;
                    task
                })
            })
            .collect();
        (t, tids)
    }

    fn audit_all<P: ScxPolicy>(s: &mut ScxSched<P>, tasks: &TaskTable, nr: usize, now: Time) {
        for i in 0..nr {
            s.audit(tasks, CpuId(i as u32), now).expect("audit");
        }
    }

    #[test]
    fn fifo_runs_in_arrival_order() {
        let (mut t, tids) = table_with(3);
        let mut s = ScxSched::new(FifoPolicy, 1);
        let cpu = CpuId(0);
        for (i, &tid) in tids.iter().enumerate() {
            s.enqueue_task(&mut t, cpu, tid, EnqueueKind::New, Time::ZERO);
            assert_eq!(s.nr_queued(cpu), i + 1);
        }
        for &tid in &tids {
            assert_eq!(s.pick_next_task(&mut t, cpu, Time::ZERO), Some(tid));
            s.dequeue_task(&mut t, cpu, tid, DequeueKind::Sleep, Time::ZERO);
        }
        assert_eq!(s.pick_next_task(&mut t, cpu, Time::ZERO), None);
    }

    #[test]
    fn slice_expiry_round_robins() {
        let (mut t, tids) = table_with(2);
        let mut s = ScxSched::new(FifoPolicy, 1);
        let cpu = CpuId(0);
        for &tid in &tids {
            s.enqueue_task(&mut t, cpu, tid, EnqueueKind::New, Time::ZERO);
        }
        let first = s.pick_next_task(&mut t, cpu, Time::ZERO).unwrap();
        assert_eq!(
            s.task_tick(&mut t, cpu, first, Time::ZERO + Dur::millis(1)),
            Preempt::No,
            "slice not yet expired"
        );
        let late = Time::ZERO + FifoPolicy.slice();
        assert_eq!(
            s.task_tick(&mut t, cpu, first, late),
            Preempt::Yes(PreemptCause::SliceExpired)
        );
        s.put_prev_task(&mut t, cpu, first, late);
        let second = s.pick_next_task(&mut t, cpu, late).unwrap();
        assert_ne!(second, first, "round robin after slice expiry");
        audit_all(&mut s, &t, 1, late);
    }

    #[test]
    fn vtime_interleaves_cpu_hog_with_equal_weight_peer() {
        let (mut t, tids) = table_with(2);
        let mut s = ScxSched::new(VtimePolicy::default(), 1);
        let cpu = CpuId(0);
        let mut now = Time::ZERO;
        for &tid in &tids {
            s.enqueue_task(&mut t, cpu, tid, EnqueueKind::New, now);
        }
        // Run each for a full slice in turn; vtime keys must alternate the
        // two equal-weight tasks rather than re-running the same one.
        let mut order = Vec::new();
        for _ in 0..4 {
            let tid = s.pick_next_task(&mut t, cpu, now).unwrap();
            order.push(tid);
            now += Dur::millis(4);
            s.put_prev_task(&mut t, cpu, tid, now);
        }
        assert_eq!(order[0], order[2]);
        assert_eq!(order[1], order[3]);
        assert_ne!(order[0], order[1], "equal weights alternate");
        audit_all(&mut s, &t, 1, now);
    }

    #[test]
    fn vtime_weighs_heavier_tasks_ahead() {
        let (mut t, tids) = table_with(2);
        t.get_mut(tids[0]).nice = -5; // weight 3121
        let mut s = ScxSched::new(VtimePolicy::default(), 1);
        let cpu = CpuId(0);
        let mut now = Time::ZERO;
        for &tid in &tids {
            s.enqueue_task(&mut t, cpu, tid, EnqueueKind::New, now);
        }
        // Over 12 slices the nice −5 task should run clearly more often.
        let mut runs = [0usize; 2];
        for _ in 0..12 {
            let tid = s.pick_next_task(&mut t, cpu, now).unwrap();
            runs[if tid == tids[0] { 0 } else { 1 }] += 1;
            now += Dur::millis(4);
            s.put_prev_task(&mut t, cpu, tid, now);
        }
        assert!(
            runs[0] > runs[1],
            "heavy task ran {} vs light {}",
            runs[0],
            runs[1]
        );
        assert!(runs[1] > 0, "light task must not starve");
    }

    #[test]
    fn dequeue_handles_running_and_queued_tasks() {
        let (mut t, tids) = table_with(2);
        let mut s = ScxSched::new(FifoPolicy, 1);
        let cpu = CpuId(0);
        for &tid in &tids {
            s.enqueue_task(&mut t, cpu, tid, EnqueueKind::New, Time::ZERO);
        }
        let curr = s.pick_next_task(&mut t, cpu, Time::ZERO).unwrap();
        // Dequeue the running task (kernel sleep path) and a queued one.
        s.dequeue_task(&mut t, cpu, curr, DequeueKind::Sleep, Time::ZERO);
        assert_eq!(s.nr_queued(cpu), 1);
        s.dequeue_task(&mut t, cpu, tids[1], DequeueKind::Sleep, Time::ZERO);
        assert_eq!(s.nr_queued(cpu), 0);
        audit_all(&mut s, &t, 1, Time::ZERO);
    }

    #[test]
    fn kernel_threads_preempt_wakeups_do_not() {
        let (mut t, tids) = table_with(3);
        t.get_mut(tids[2]).kernel_thread = true;
        let mut s = ScxSched::new(FifoPolicy, 1);
        let cpu = CpuId(0);
        s.enqueue_task(&mut t, cpu, tids[0], EnqueueKind::New, Time::ZERO);
        s.pick_next_task(&mut t, cpu, Time::ZERO).unwrap();
        assert_eq!(
            s.enqueue_task(&mut t, cpu, tids[1], EnqueueKind::Wakeup, Time::ZERO),
            Preempt::No
        );
        assert_eq!(
            s.enqueue_task(&mut t, cpu, tids[2], EnqueueKind::Wakeup, Time::ZERO),
            Preempt::Yes(PreemptCause::KernelThread)
        );
    }

    #[test]
    fn dispatch_steals_from_busiest_cpu() {
        let (mut t, tids) = table_with(3);
        let mut s = ScxSched::new(FifoPolicy, 2);
        for &tid in &tids {
            s.enqueue_task(&mut t, CpuId(0), tid, EnqueueKind::New, Time::ZERO);
        }
        let mut stats = SelectStats::default();
        assert!(s.idle_balance(&mut t, CpuId(1), Time::ZERO, &mut stats));
        assert!(stats.cpus_scanned > 0);
        assert_eq!(s.nr_queued(CpuId(1)), 1);
        assert_eq!(s.nr_queued(CpuId(0)), 2);
        assert_eq!(t.get(s.queued_tids(CpuId(1))[0]).cpu, CpuId(1));
        // The stolen task is the queue head: first arrival.
        assert_eq!(s.queued_tids(CpuId(1)), vec![tids[0]]);
        audit_all(&mut s, &t, 2, Time::ZERO);
    }

    #[test]
    fn offline_cpus_are_never_selected() {
        let (t, tids) = table_with(1);
        let mut s = ScxSched::new(FifoPolicy, 2);
        s.cpu_offline(CpuId(0));
        let mut stats = SelectStats::default();
        let cpu = s.select_task_rq(&t, tids[0], WakeKind::New, CpuId(0), Time::ZERO, &mut stats);
        assert_eq!(cpu, CpuId(1));
        s.cpu_online(CpuId(0));
    }
}
